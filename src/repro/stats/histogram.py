"""Fixed-bucket and exact histograms for stall-length distributions (F1)."""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import StatsError


class Histogram:
    """Histogram over explicit bucket edges, with exact min/max/sum tracking.

    Buckets are half-open ``[edge[i], edge[i+1])``; values below the first
    edge go to an underflow bucket and values at or above the last edge to an
    overflow bucket.  Percentiles are computed from the raw retained samples
    when ``keep_samples`` is on (the default for evaluation runs, where the
    sample counts are modest), otherwise estimated by linear interpolation
    within buckets.
    """

    def __init__(self, edges: Sequence[float], keep_samples: bool = True) -> None:
        if len(edges) < 2:
            raise ValueError("a histogram needs at least two bucket edges")
        ordered = list(edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self._edges: List[float] = ordered
        self._counts: List[int] = [0] * (len(ordered) + 1)  # +under/overflow
        self._keep = keep_samples
        self._samples: List[float] = []
        self._n = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    @classmethod
    def linear(cls, low: float, high: float, buckets: int, **kwargs: bool) -> "Histogram":
        if buckets < 1:
            raise StatsError("need at least one bucket")
        step = (high - low) / buckets
        return cls([low + i * step for i in range(buckets + 1)], **kwargs)

    @classmethod
    def exponential(cls, low: float, factor: float, buckets: int, **kwargs: bool) -> "Histogram":
        if low <= 0 or factor <= 1.0:
            raise StatsError("exponential histogram needs low > 0 and factor > 1")
        return cls([low * factor ** i for i in range(buckets + 1)], **kwargs)

    def observe(self, value: float, count: int = 1) -> None:
        if count < 1:
            raise StatsError("count must be >= 1")
        index = bisect.bisect_right(self._edges, value)
        self._counts[index] += count
        self._n += count
        self._sum += value * count
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._keep:
            self._samples.extend([value] * count)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else 0.0

    @property
    def min(self) -> float:
        return self._min if self._n else 0.0

    @property
    def max(self) -> float:
        return self._max if self._n else 0.0

    def bucket_counts(self) -> List[Tuple[float, float, int]]:
        """(low_edge, high_edge, count) per in-range bucket."""
        return [
            (self._edges[i], self._edges[i + 1], self._counts[i + 1])
            for i in range(len(self._edges) - 1)
        ]

    @property
    def underflow(self) -> int:
        return self._counts[0]

    @property
    def overflow(self) -> int:
        return self._counts[-1]

    def percentile(self, p: float) -> float:
        """The p-th percentile (0 <= p <= 100)."""
        if not 0.0 <= p <= 100.0:
            raise StatsError(f"percentile must be in [0, 100], got {p}")
        if self._n == 0:
            return 0.0
        if self._keep:
            ordered = sorted(self._samples)
            rank = p / 100.0 * (len(ordered) - 1)
            lower = int(rank)
            upper = min(lower + 1, len(ordered) - 1)
            frac = rank - lower
            return ordered[lower] * (1 - frac) + ordered[upper] * frac
        return self._percentile_from_buckets(p)

    def _percentile_from_buckets(self, p: float) -> float:
        target = p / 100.0 * self._n
        cumulative = 0
        # Underflow bucket: clamp to min.
        if self._counts[0]:
            cumulative += self._counts[0]
            if cumulative >= target:
                return self._min
        for i in range(len(self._edges) - 1):
            bucket = self._counts[i + 1]
            if bucket and cumulative + bucket >= target:
                frac = (target - cumulative) / bucket
                return self._edges[i] + frac * (self._edges[i + 1] - self._edges[i])
            cumulative += bucket
        return self._max

    def normalized(self) -> Dict[Tuple[float, float], float]:
        """In-range bucket shares of all observations (sums to <= 1.0)."""
        if self._n == 0:
            return {}
        return {
            (low, high): count / self._n
            for low, high, count in self.bucket_counts()
        }
