"""Interval bookkeeping: the time-in-state ledger of the simulation.

The MAPG evaluation is an exercise in accounting: every core cycle belongs
to exactly one activity state (busy, stalled-on-memory, draining, gated,
waking, ...), and the energy model integrates power over those intervals.
``IntervalAccumulator`` enforces the "exactly one state, no gaps, no
overlaps" invariant at runtime so that an accounting bug surfaces as an
exception instead of a silently wrong energy number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class IntervalRecord:
    """One closed interval spent in ``state``: [start, end) in cycles."""

    state: str
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


class IntervalAccumulator:
    """Tracks contiguous, non-overlapping state intervals over sim time."""

    def __init__(self, initial_state: str, start_cycle: int = 0,
                 keep_records: bool = False) -> None:
        self._state = initial_state
        self._state_start = start_cycle
        self._totals: Dict[str, int] = {}
        self._keep = keep_records
        self._records: List[IntervalRecord] = []
        self._transitions = 0
        self._closed_at: Optional[int] = None

    @property
    def state(self) -> str:
        return self._state

    @property
    def transitions(self) -> int:
        return self._transitions

    def switch(self, new_state: str, cycle: int) -> None:
        """Close the current interval at ``cycle`` and enter ``new_state``.

        ``cycle`` must be monotonically non-decreasing.  Switching to the
        current state is allowed and is a no-op boundary (zero-length
        intervals are not recorded).
        """
        if self._closed_at is not None:
            raise SimulationError("accumulator already closed")
        if cycle < self._state_start:
            raise SimulationError(
                f"time went backwards: switch at {cycle} < start {self._state_start}")
        if new_state == self._state:
            return
        self._commit(cycle)
        self._state = new_state
        self._state_start = cycle
        self._transitions += 1

    def close(self, cycle: int) -> None:
        """Finalize the ledger at ``cycle``; further switches raise."""
        if self._closed_at is not None:
            raise SimulationError("accumulator already closed")
        if cycle < self._state_start:
            raise SimulationError(
                f"time went backwards: close at {cycle} < start {self._state_start}")
        self._commit(cycle)
        self._closed_at = cycle

    def _commit(self, cycle: int) -> None:
        length = cycle - self._state_start
        if length > 0:
            self._totals[self._state] = self._totals.get(self._state, 0) + length
            if self._keep:
                self._records.append(
                    IntervalRecord(self._state, self._state_start, cycle))

    def total(self, state: str) -> int:
        """Total cycles accumulated in ``state`` so far (committed intervals)."""
        return self._totals.get(state, 0)

    def totals(self) -> Dict[str, int]:
        return dict(self._totals)

    def grand_total(self) -> int:
        return sum(self._totals.values())

    def records(self) -> List[IntervalRecord]:
        if not self._keep:
            raise SimulationError("records were not kept (keep_records=False)")
        return list(self._records)

    def verify_contiguous(self) -> None:
        """Assert the kept records tile time with no gaps or overlaps."""
        records = self.records()
        for previous, current in zip(records, records[1:]):
            if current.start != previous.end:
                raise SimulationError(
                    f"interval gap/overlap: {previous} then {current}")
