"""Trace substrate: the compact operation format consumed by the core model."""

from repro.trace.format import ComputeBlock, MemoryAccess, TraceOp, trace_summary
from repro.trace.io import read_trace, read_trace_file, write_trace, write_trace_file

__all__ = [
    "ComputeBlock",
    "MemoryAccess",
    "TraceOp",
    "trace_summary",
    "read_trace",
    "read_trace_file",
    "write_trace",
    "write_trace_file",
]
