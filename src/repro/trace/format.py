"""Trace record format.

A trace is a sequence of two kinds of operations:

* :class:`ComputeBlock` — ``instructions`` back-to-back non-memory
  instructions retiring at the core's peak IPC.
* :class:`MemoryAccess` — one load or store to ``address`` issued by the
  static instruction at ``pc``.

This run-length encoding is deliberately chosen over a per-instruction
format: MAPG acts only at memory-stall boundaries, so compute stretches need
only their length, which keeps million-instruction traces small and fast to
replay in pure Python while losing nothing the mechanism can observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Union

from repro.errors import TraceError


@dataclass(frozen=True)
class ComputeBlock:
    """A run of ``instructions`` non-memory instructions."""

    instructions: int

    def __post_init__(self) -> None:
        if self.instructions < 1:
            raise TraceError(
                f"ComputeBlock needs >= 1 instruction, got {self.instructions}")


@dataclass(frozen=True)
class MemoryAccess:
    """One memory instruction.

    ``address`` is a byte address; ``pc`` identifies the static instruction
    (used by per-PC latency predictors); ``is_write`` selects store semantics
    (write-allocate, dirty line on hit).  ``dependent`` marks an access whose
    address was computed from the previous load's data (pointer chasing):
    an out-of-order core cannot issue it while that producer is still in
    flight, so no amount of MLP hides the serialization.  The blocking
    in-order core ignores the flag (it serializes everything anyway).
    """

    address: int
    pc: int = 0
    is_write: bool = False
    dependent: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise TraceError(f"address must be non-negative, got {self.address}")
        if self.pc < 0:
            raise TraceError(f"pc must be non-negative, got {self.pc}")


TraceOp = Union[ComputeBlock, MemoryAccess]


def trace_summary(ops: Iterable[TraceOp]) -> Dict[str, int]:
    """Instruction/access counts of a trace, validating record types.

    Returns a dict with ``instructions`` (total dynamic instructions,
    memory ops included), ``memory_accesses``, ``writes``, and ``ops``
    (record count).
    """
    instructions = 0
    accesses = 0
    writes = 0
    records = 0
    for op in ops:
        records += 1
        if isinstance(op, ComputeBlock):
            instructions += op.instructions
        elif isinstance(op, MemoryAccess):
            instructions += 1
            accesses += 1
            if op.is_write:
                writes += 1
        else:
            raise TraceError(f"unknown trace record type: {type(op).__name__}")
    return {
        "instructions": instructions,
        "memory_accesses": accesses,
        "writes": writes,
        "ops": records,
    }
