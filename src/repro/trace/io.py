"""Trace serialization.

Two formats share one record schema:

* **text** (``.jsonl``): one JSON object per line — self-describing, easy to
  inspect and diff; used for small examples and regression fixtures.
* **binary** (``.bin``): fixed-width little-endian records via ``struct`` —
  compact for long generated traces.

Binary layout per record (9 bytes):
``kind:u8`` then for compute ``instructions:u64``; for memory the record is
25 bytes: ``address:u64 pc:u64 flags:u64`` (flags bit 0 = is_write,
bit 1 = dependent).
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, TextIO, Union

from repro.errors import TraceError
from repro.trace.format import ComputeBlock, MemoryAccess, TraceOp

_KIND_COMPUTE = 0
_KIND_MEMORY = 1
_COMPUTE_STRUCT = struct.Struct("<BQ")
_MEMORY_STRUCT = struct.Struct("<BQQQ")


# ---- text (jsonl) ---------------------------------------------------------------


def _op_to_obj(op: TraceOp) -> dict:
    if isinstance(op, ComputeBlock):
        return {"kind": "compute", "n": op.instructions}
    if isinstance(op, MemoryAccess):
        obj = {"kind": "mem", "addr": op.address, "pc": op.pc,
               "w": int(op.is_write)}
        if op.dependent:
            obj["dep"] = 1
        return obj
    raise TraceError(f"unknown trace record type: {type(op).__name__}")


def _obj_to_op(obj: dict) -> TraceOp:
    kind = obj.get("kind")
    if kind == "compute":
        return ComputeBlock(instructions=int(obj["n"]))
    if kind == "mem":
        return MemoryAccess(
            address=int(obj["addr"]),
            pc=int(obj.get("pc", 0)),
            is_write=bool(obj.get("w", 0)),
            dependent=bool(obj.get("dep", 0)),
        )
    raise TraceError(f"unknown trace record kind: {kind!r}")


def write_trace(ops: Iterable[TraceOp], stream: TextIO) -> int:
    """Write ops as JSON lines; returns the record count."""
    count = 0
    for op in ops:
        stream.write(json.dumps(_op_to_obj(op), separators=(",", ":")))
        stream.write("\n")
        count += 1
    return count


def read_trace(stream: TextIO) -> Iterator[TraceOp]:
    """Yield ops from a JSON-lines stream, validating each record."""
    for line_number, line in enumerate(stream, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {line_number}: invalid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise TraceError(f"line {line_number}: record must be an object")
        yield _obj_to_op(obj)


# ---- binary ---------------------------------------------------------------------


def _write_binary(ops: Iterable[TraceOp], stream: BinaryIO) -> int:
    count = 0
    for op in ops:
        if isinstance(op, ComputeBlock):
            stream.write(_COMPUTE_STRUCT.pack(_KIND_COMPUTE, op.instructions))
        elif isinstance(op, MemoryAccess):
            flags = int(op.is_write) | (int(op.dependent) << 1)
            stream.write(_MEMORY_STRUCT.pack(
                _KIND_MEMORY, op.address, op.pc, flags))
        else:
            raise TraceError(f"unknown trace record type: {type(op).__name__}")
        count += 1
    return count


def _read_binary(stream: BinaryIO) -> Iterator[TraceOp]:
    while True:
        kind_byte = stream.read(1)
        if not kind_byte:
            return
        kind = kind_byte[0]
        if kind == _KIND_COMPUTE:
            payload = stream.read(_COMPUTE_STRUCT.size - 1)
            if len(payload) != _COMPUTE_STRUCT.size - 1:
                raise TraceError("truncated compute record")
            (instructions,) = struct.unpack("<Q", payload)
            yield ComputeBlock(instructions=instructions)
        elif kind == _KIND_MEMORY:
            payload = stream.read(_MEMORY_STRUCT.size - 1)
            if len(payload) != _MEMORY_STRUCT.size - 1:
                raise TraceError("truncated memory record")
            address, pc, flags = struct.unpack("<QQQ", payload)
            yield MemoryAccess(address=address, pc=pc,
                               is_write=bool(flags & 1),
                               dependent=bool(flags & 2))
        else:
            raise TraceError(f"unknown binary record kind: {kind}")


# ---- file-level helpers ---------------------------------------------------------


def write_trace_file(ops: Iterable[TraceOp], path: Union[str, Path]) -> int:
    """Write a trace to ``path``; format chosen by suffix (.jsonl or .bin)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        with open(path, "w", encoding="utf-8") as stream:
            return write_trace(ops, stream)
    if path.suffix == ".bin":
        with open(path, "wb") as stream:
            return _write_binary(ops, stream)
    raise TraceError(f"unsupported trace suffix {path.suffix!r} (use .jsonl or .bin)")


def read_trace_file(path: Union[str, Path]) -> List[TraceOp]:
    """Read an entire trace file into a list; format chosen by suffix."""
    path = Path(path)
    if path.suffix == ".jsonl":
        with open(path, "r", encoding="utf-8") as stream:
            return list(read_trace(stream))
    if path.suffix == ".bin":
        with open(path, "rb") as stream:
            return list(_read_binary(stream))
    raise TraceError(f"unsupported trace suffix {path.suffix!r} (use .jsonl or .bin)")
