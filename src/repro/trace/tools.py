"""Trace transformations.

Utility passes over trace-op sequences that the examples, tests, and
benchmark setup use to build derived workloads without regenerating:

* :func:`truncate`      — first N ops (fast sub-sampling of long traces)
* :func:`skip`          — drop a warm-up prefix
* :func:`remap_addresses` — relocate a trace into a disjoint address region
  (building multiprogrammed mixes that must not share data)
* :func:`interleave`    — round-robin merge of several traces into one
  (a crude time-share of one core)
* :func:`scale_compute` — multiply compute-block lengths (change the
  memory intensity of an existing trace)
* :func:`window_summaries` — per-window instruction/access counts (phase
  inspection)
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

from repro.errors import TraceError
from repro.trace.format import ComputeBlock, MemoryAccess, TraceOp


def truncate(ops: Iterable[TraceOp], count: int) -> Iterator[TraceOp]:
    """Yield at most the first ``count`` ops."""
    if count < 0:
        raise TraceError(f"count must be >= 0, got {count}")
    for index, op in enumerate(ops):
        if index >= count:
            return
        yield op


def skip(ops: Iterable[TraceOp], count: int) -> Iterator[TraceOp]:
    """Yield everything after the first ``count`` ops (warm-up removal)."""
    if count < 0:
        raise TraceError(f"count must be >= 0, got {count}")
    for index, op in enumerate(ops):
        if index >= count:
            yield op


def remap_addresses(ops: Iterable[TraceOp], offset_bytes: int) -> Iterator[TraceOp]:
    """Shift every memory address by ``offset_bytes`` (must stay >= 0)."""
    for op in ops:
        if isinstance(op, MemoryAccess):
            new_address = op.address + offset_bytes
            if new_address < 0:
                raise TraceError(
                    f"remap pushes address {op.address:#x} below zero")
            yield MemoryAccess(address=new_address, pc=op.pc,
                               is_write=op.is_write)
        else:
            yield op


def interleave(traces: Sequence[Sequence[TraceOp]],
               chunk_ops: int = 1) -> Iterator[TraceOp]:
    """Round-robin merge: ``chunk_ops`` ops from each trace in turn.

    Exhausted traces drop out; the merge ends when all are exhausted.
    """
    if not traces:
        raise TraceError("interleave needs at least one trace")
    if chunk_ops < 1:
        raise TraceError(f"chunk_ops must be >= 1, got {chunk_ops}")
    iterators: List[Iterator[TraceOp]] = [iter(trace) for trace in traces]
    live = list(range(len(iterators)))
    while live:
        finished: List[int] = []
        for index in live:
            for __ in range(chunk_ops):
                try:
                    yield next(iterators[index])
                except StopIteration:
                    finished.append(index)
                    break
        for index in finished:
            live.remove(index)


def scale_compute(ops: Iterable[TraceOp], factor: float) -> Iterator[TraceOp]:
    """Scale compute-block lengths by ``factor`` (memory ops untouched).

    Scaled blocks round to a minimum of one instruction, so the op count
    and the memory access sequence are exactly preserved.
    """
    if factor <= 0.0:
        raise TraceError(f"factor must be > 0, got {factor}")
    for op in ops:
        if isinstance(op, ComputeBlock):
            yield ComputeBlock(max(1, int(round(op.instructions * factor))))
        else:
            yield op


def window_summaries(ops: Iterable[TraceOp],
                     window_ops: int) -> List[Dict[str, int]]:
    """Per-window counts: instructions, memory accesses, writes.

    The final window may be partial.  Useful for eyeballing the phase
    structure of a generated trace.
    """
    if window_ops < 1:
        raise TraceError(f"window_ops must be >= 1, got {window_ops}")
    windows: List[Dict[str, int]] = []
    current = {"instructions": 0, "memory_accesses": 0, "writes": 0, "ops": 0}
    for op in ops:
        if isinstance(op, ComputeBlock):
            current["instructions"] += op.instructions
        elif isinstance(op, MemoryAccess):
            current["instructions"] += 1
            current["memory_accesses"] += 1
            if op.is_write:
                current["writes"] += 1
        else:
            raise TraceError(f"unknown trace record type: {type(op).__name__}")
        current["ops"] += 1
        if current["ops"] == window_ops:
            windows.append(current)
            current = {"instructions": 0, "memory_accesses": 0,
                       "writes": 0, "ops": 0}
    if current["ops"]:
        windows.append(current)
    return windows
