"""Unit helpers for time, energy, and power.

The simulator keeps time in **cycles** (integers) at the core clock, while
the circuit and power models naturally work in **seconds**, **watts**, and
**joules**.  Mixing those silently is the classic source of 1000x errors in
power studies, so this module provides one explicit conversion point.

Conventions used throughout the package:

* ``cycles``    — ``int``, core-clock cycles.
* ``seconds``   — ``float``, SI seconds.
* ``watts``     — ``float``, SI watts.
* ``joules``    — ``float``, SI joules.

Convenience constants (``NS``, ``US``, ``MW`` …) exist so that configuration
literals read like the paper: ``t_rcd=13.75 * NS``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

# Time scale factors (value expressed in seconds).
FS = 1e-15
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3

# Power scale factors (value expressed in watts).
NW = 1e-9
UW = 1e-6
MW = 1e-3

# Energy scale factors (value expressed in joules).
FJ = 1e-15
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6
MJ = 1e-3

# Frequency scale factors (value expressed in hertz).
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# Guard epsilon for :func:`seconds_to_cycles_ceil`: a duration that lands
# within one part in 10^12 of a whole cycle is treated as exactly whole,
# so float noise from the ns<->s round trip never ceils to an extra
# cycle.  Shared with the fast kernel's inlined copy of the conversion.
CYCLE_CEIL_EPSILON = 1e-12


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` to seconds."""
    if frequency_hz <= 0.0:
        raise ConfigError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def cycles_to_ns(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` to nanoseconds.

    Implemented as a multiplication by the exact float 1e9 rather than a
    division by the inexact float ``NS``: the two differ in the last ulp,
    and the DRAM timing model ceils the result to whole cycles, so the ulp
    would occasionally become a one-cycle (and thus trajectory-level)
    difference between otherwise identical simulations.
    """
    if frequency_hz <= 0.0:
        raise ConfigError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz * 1e9


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert a duration in seconds to (fractional) cycles at ``frequency_hz``."""
    if frequency_hz <= 0.0:
        raise ConfigError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def seconds_to_cycles_ceil(seconds: float, frequency_hz: float) -> int:
    """Convert seconds to whole cycles, rounding up.

    Rounding up is the conservative choice for latencies: a hardware event
    that takes 3.2 cycles occupies 4 clock edges.
    """
    return int(math.ceil(seconds_to_cycles(seconds, frequency_hz)
                         - CYCLE_CEIL_EPSILON))


def energy_joules(power_watts: float, seconds: float) -> float:
    """Energy of a constant power draw over a duration."""
    return power_watts * seconds


def format_si(value: float, unit: str, precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.5e-9, 's')`` -> ``'2.5 ns'``.

    Handles zero and negative values; magnitudes outside [1e-18, 1e18) fall
    back to plain scientific notation.
    """
    if value == 0.0:
        return f"0 {unit}"
    prefixes = [
        (1e18, "E"), (1e15, "P"), (1e12, "T"), (1e9, "G"), (1e6, "M"),
        (1e3, "k"), (1.0, ""), (1e-3, "m"), (1e-6, "u"), (1e-9, "n"),
        (1e-12, "p"), (1e-15, "f"), (1e-18, "a"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{precision}g} {prefix}{unit}"
    return f"{value:.{precision}e} {unit}"
