"""Workload substrate: SPEC-like synthetic trace generation."""

from repro.workloads.phases import PhaseSchedule, PhaseSpec
from repro.workloads.profiles import (
    PROFILES,
    WorkloadProfile,
    get_profile,
    memory_bound_profiles,
    profile_names,
)
from repro.workloads.synthetic import SyntheticTraceGenerator, generate_trace

__all__ = [
    "PhaseSchedule",
    "PhaseSpec",
    "PROFILES",
    "WorkloadProfile",
    "get_profile",
    "memory_bound_profiles",
    "profile_names",
    "SyntheticTraceGenerator",
    "generate_trace",
]
