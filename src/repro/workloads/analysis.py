"""Trace locality analysis: stack-distance profiling.

The reuse (stack) distance of an access — how many *distinct* lines were
touched since the last touch of the same line — is the canonical
cache-behaviour fingerprint: a cache of capacity C lines captures exactly
the accesses with distance < C (fully-associative LRU).  This profiler
validates that the synthetic workload generator produces the continuous
stack-distance curves real programs have, and lets users fingerprint their
own traces.

The implementation is the classic LRU-stack algorithm, O(N * D) worst case
with an early-exit depth cap — fine for the trace sizes this repository
works with.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import TraceError
from repro.stats import Histogram
from repro.trace.format import ComputeBlock, MemoryAccess, TraceOp

_LINE_SHIFT = 6  # 64-byte lines

INFINITE_DISTANCE = -1  # marker for first-touch (cold) accesses


def reuse_distances(ops: Iterable[TraceOp],
                    max_depth: Optional[int] = None) -> List[int]:
    """Per-access LRU stack distances; cold accesses yield INFINITE_DISTANCE.

    ``max_depth`` caps the stack search: distances beyond it are reported
    as ``max_depth`` (callers bucketing into a histogram rarely need exact
    deep distances, and the cap bounds the quadratic worst case).
    """
    stack: List[int] = []  # most recent at the end
    positions: Dict[int, None] = {}
    distances: List[int] = []
    for op in ops:
        if isinstance(op, ComputeBlock):
            continue
        if not isinstance(op, MemoryAccess):
            raise TraceError(f"unknown trace record type: {type(op).__name__}")
        line = op.address >> _LINE_SHIFT
        if line not in positions:
            distances.append(INFINITE_DISTANCE)
            positions[line] = None
            stack.append(line)
            continue
        # Search from the top of the stack.
        depth = 0
        index = len(stack) - 1
        found = None
        while index >= 0:
            if stack[index] == line:
                found = index
                break
            depth += 1
            if max_depth is not None and depth >= max_depth:
                break
            index -= 1
        if found is None:
            distances.append(max_depth)
            # Move-to-top without knowing the exact position: do the full
            # removal anyway so the stack stays correct.
            stack.remove(line)
        else:
            distances.append(depth)
            del stack[found]
        stack.append(line)
    return distances


def stack_distance_histogram(ops: Iterable[TraceOp],
                             max_depth: int = 65536) -> "StackProfile":
    """Bucketed stack-distance profile of a trace."""
    distances = reuse_distances(ops, max_depth=max_depth)
    histogram = Histogram.exponential(low=1.0, factor=2.0, buckets=18,
                                      keep_samples=False)
    cold = 0
    zero = 0
    for distance in distances:
        if distance == INFINITE_DISTANCE:
            cold += 1
        elif distance == 0:
            zero += 1
        else:
            histogram.observe(float(distance))
    return StackProfile(histogram=histogram, cold=cold,
                        immediate=zero, total=len(distances))


class StackProfile:
    """Result of a stack-distance profiling pass."""

    def __init__(self, histogram: Histogram, cold: int, immediate: int,
                 total: int) -> None:
        self.histogram = histogram
        self.cold = cold
        self.immediate = immediate
        self.total = total

    def hit_fraction_at(self, capacity_lines: int) -> float:
        """Fraction of accesses a ``capacity_lines`` LRU cache would hit.

        Counts immediate re-touches plus every bucketed distance below the
        capacity (cold accesses always miss).
        """
        if capacity_lines < 1:
            raise TraceError(f"capacity must be >= 1 line, got {capacity_lines}")
        if self.total == 0:
            return 0.0
        hits = self.immediate
        for low, high, count in self.histogram.bucket_counts():
            if high <= capacity_lines:
                hits += count
            elif low < capacity_lines:
                # Partial bucket: pro-rate linearly.
                span = high - low
                hits += count * (capacity_lines - low) / span
        return hits / self.total

    def cold_fraction(self) -> float:
        return self.cold / self.total if self.total else 0.0
