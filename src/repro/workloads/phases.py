"""Program-phase modeling.

Real programs alternate between memory-intense and compute-intense phases
(loops over large arrays vs. local computation).  Phase structure matters to
MAPG twice: it creates bursts of gating opportunities, and it is what makes
history-based latency prediction work (within a phase, consecutive misses
behave alike).

A :class:`PhaseSchedule` is a repeating sequence of :class:`PhaseSpec`
segments; the generator asks it which phase any given operation index falls
into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class PhaseSpec:
    """One program phase.

    ``ops`` — length of the phase in trace operations.
    ``memory_scale`` — multiplier on the profile's memory intensity
    (> 1 = more memory ops per instruction than the profile average).
    ``random_scale`` — multiplier shifting the access mix toward random
    (cache-hostile) addresses within the phase.
    """

    ops: int
    memory_scale: float = 1.0
    random_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise ConfigError(f"phase length must be >= 1 op, got {self.ops}")
        if self.memory_scale <= 0.0:
            raise ConfigError(f"memory_scale must be > 0, got {self.memory_scale}")
        if self.random_scale < 0.0:
            raise ConfigError(f"random_scale must be >= 0, got {self.random_scale}")


class PhaseSchedule:
    """A repeating sequence of phases addressed by operation index."""

    def __init__(self, phases: Sequence[PhaseSpec]) -> None:
        if not phases:
            raise ConfigError("a phase schedule needs at least one phase")
        self._phases: Tuple[PhaseSpec, ...] = tuple(phases)
        self._period = sum(phase.ops for phase in self._phases)

    @classmethod
    def steady(cls) -> "PhaseSchedule":
        """A single uniform phase (no phase behaviour)."""
        return cls((PhaseSpec(ops=1),))

    @property
    def period(self) -> int:
        return self._period

    @property
    def phases(self) -> Tuple[PhaseSpec, ...]:
        return self._phases

    def phase_at(self, op_index: int) -> PhaseSpec:
        """The phase governing operation ``op_index`` (schedule repeats)."""
        if op_index < 0:
            raise ConfigError(f"op_index must be >= 0, got {op_index}")
        position = op_index % self._period
        for phase in self._phases:
            if position < phase.ops:
                return phase
            position -= phase.ops
        # A genuinely internal invariant: __post_init__ guarantees the
        # phases sum to the period, so conversion to a ReproError would
        # only dress up dead code.
        raise AssertionError(  # mapglint: disable=ERR04
            "unreachable: position always falls inside the period")
