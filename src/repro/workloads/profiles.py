"""SPEC-CPU2006-like workload profiles.

We cannot redistribute SPEC traces, so each profile parameterizes the
synthetic generator to match the *published qualitative behaviour* of a
well-known benchmark: its memory intensity (ops per instruction), cache
friendliness (working-set size and access-pattern mix), and phase
structure.  The suffix ``_like`` is deliberate — these are behavioural
stand-ins, and the evaluation only relies on the *ordering* they induce
(mcf-like most memory-bound ... povray-like least), which matches the
published SPEC ordering.

Pattern mix semantics: every memory access draws its address from one of
three streams — ``sequential`` (unit-line stride: prefetch- and row-buffer-
friendly), ``strided`` (large fixed stride: row-buffer-hostile but
predictable), ``random`` (uniform over the working set: cache- and
row-buffer-hostile).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.workloads.phases import PhaseSchedule, PhaseSpec


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters for one benchmark-like workload."""

    name: str
    description: str
    instructions_per_memory_op: float  # mean dynamic instructions per memory access
    sequential_fraction: float
    strided_fraction: float
    random_fraction: float
    working_set_bytes: int
    stride_bytes: int = 1024
    write_fraction: float = 0.3
    pc_pool_size: int = 32
    # Temporal locality: fraction of accesses that re-touch a recently-used
    # line.  High for compute-bound codes, low for pointer chasers.
    # Re-touches draw over the last ``reuse_window_lines`` with a power-law
    # skew toward recency (``reuse_skew``: draw index = window * u^skew),
    # which gives traces a continuous stack-distance profile — near draws
    # hit L1, middle-distance draws exercise L2 capacity.
    reuse_fraction: float = 0.85
    reuse_window_lines: int = 2048
    reuse_skew: float = 3.0
    # Spatial locality within the sequential stream: bytes advanced per
    # access (8 = a 64 B line is touched 8 times before moving on).
    sequential_step_bytes: int = 8
    # Fraction of fresh random-stream loads whose address depends on the
    # previous load's data (pointer chasing).  Dependent loads cannot issue
    # while their producer is in flight, so MLP cannot hide them; only the
    # windowed core reads the flag.
    pointer_chase_fraction: float = 0.0
    phases: Tuple[PhaseSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.instructions_per_memory_op < 1.0:
            raise ConfigError(
                f"instructions_per_memory_op must be >= 1, got "
                f"{self.instructions_per_memory_op}")
        mix = self.sequential_fraction + self.strided_fraction + self.random_fraction
        if abs(mix - 1.0) > 1e-9:
            raise ConfigError(f"pattern fractions must sum to 1.0, got {mix}")
        for label in ("sequential_fraction", "strided_fraction", "random_fraction",
                      "write_fraction", "reuse_fraction"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{label} must be in [0, 1], got {value}")
        if self.working_set_bytes < 4096:
            raise ConfigError(
                f"working set must be >= 4 KiB, got {self.working_set_bytes}")
        if self.stride_bytes < 1:
            raise ConfigError(f"stride_bytes must be >= 1, got {self.stride_bytes}")
        if self.pc_pool_size < 1:
            raise ConfigError(f"pc_pool_size must be >= 1, got {self.pc_pool_size}")
        if self.reuse_window_lines < 1:
            raise ConfigError(
                f"reuse_window_lines must be >= 1, got {self.reuse_window_lines}")
        if self.reuse_skew < 1.0:
            raise ConfigError(
                f"reuse_skew must be >= 1, got {self.reuse_skew}")
        if self.sequential_step_bytes < 1:
            raise ConfigError(
                f"sequential_step_bytes must be >= 1, got {self.sequential_step_bytes}")
        if not 0.0 <= self.pointer_chase_fraction <= 1.0:
            raise ConfigError(
                f"pointer_chase_fraction must be in [0, 1], "
                f"got {self.pointer_chase_fraction}")

    def phase_schedule(self) -> PhaseSchedule:
        """The profile's phase structure (steady if none declared)."""
        if not self.phases:
            return PhaseSchedule.steady()
        return PhaseSchedule(self.phases)


_MIB = 1024 * 1024

_ALL_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile(
        name="mcf_like",
        description="pointer-chasing over a huge graph; extremely memory-bound",
        instructions_per_memory_op=4.0,
        sequential_fraction=0.05, strided_fraction=0.10, random_fraction=0.85,
        working_set_bytes=256 * _MIB, write_fraction=0.25, pc_pool_size=24, reuse_fraction=0.55, reuse_window_lines=32768, reuse_skew=8.0, pointer_chase_fraction=0.85,
    ),
    WorkloadProfile(
        name="gems_like",
        description="FDTD electromagnetic solver; huge strided sweeps, very memory-bound",
        instructions_per_memory_op=5.0,
        sequential_fraction=0.35, strided_fraction=0.50, random_fraction=0.15,
        working_set_bytes=192 * _MIB, stride_bytes=8192, write_fraction=0.45,
        pc_pool_size=16, reuse_fraction=0.58, reuse_window_lines=16384, reuse_skew=8.0,
    ),
    WorkloadProfile(
        name="libquantum_like",
        description="streaming sweeps over a large state vector; bandwidth-bound",
        instructions_per_memory_op=6.0,
        sequential_fraction=0.80, strided_fraction=0.15, random_fraction=0.05,
        working_set_bytes=64 * _MIB, write_fraction=0.45, pc_pool_size=8, reuse_fraction=0.60, reuse_window_lines=8192, reuse_skew=7.0,
    ),
    WorkloadProfile(
        name="lbm_like",
        description="lattice-Boltzmann stencil; strided streaming, large footprint",
        instructions_per_memory_op=5.0,
        sequential_fraction=0.45, strided_fraction=0.45, random_fraction=0.10,
        working_set_bytes=128 * _MIB, stride_bytes=4096, write_fraction=0.50,
        pc_pool_size=16, reuse_fraction=0.60, reuse_window_lines=16384, reuse_skew=8.0,
    ),
    WorkloadProfile(
        name="milc_like",
        description="lattice QCD; phase-alternating strided/random traffic",
        instructions_per_memory_op=6.0,
        sequential_fraction=0.30, strided_fraction=0.40, random_fraction=0.30,
        working_set_bytes=96 * _MIB, stride_bytes=2048, write_fraction=0.35,
        pc_pool_size=24, reuse_fraction=0.70, reuse_window_lines=32768, reuse_skew=8.0,
        phases=(PhaseSpec(ops=4000, memory_scale=1.5, random_scale=1.3),
                PhaseSpec(ops=4000, memory_scale=0.6, random_scale=0.5)),
    ),
    WorkloadProfile(
        name="soplex_like",
        description="sparse LP solver; irregular over a moderate footprint",
        instructions_per_memory_op=7.0,
        sequential_fraction=0.25, strided_fraction=0.25, random_fraction=0.50,
        working_set_bytes=48 * _MIB, write_fraction=0.30, pc_pool_size=40, reuse_fraction=0.78, reuse_window_lines=32768, reuse_skew=8.0, pointer_chase_fraction=0.30,
    ),
    WorkloadProfile(
        name="gcc_like",
        description="compiler; mixed locality, phase-heavy, moderate misses",
        instructions_per_memory_op=8.0,
        sequential_fraction=0.40, strided_fraction=0.20, random_fraction=0.40,
        working_set_bytes=24 * _MIB, write_fraction=0.35, pc_pool_size=64, reuse_fraction=0.85, reuse_window_lines=16384, reuse_skew=8.0,
        phases=(PhaseSpec(ops=3000, memory_scale=1.4, random_scale=1.2),
                PhaseSpec(ops=5000, memory_scale=0.7, random_scale=0.8)),
    ),
    WorkloadProfile(
        name="astar_like",
        description="path-finding; pointer-heavy over a mid-size graph",
        instructions_per_memory_op=6.0,
        sequential_fraction=0.15, strided_fraction=0.15, random_fraction=0.70,
        working_set_bytes=32 * _MIB, write_fraction=0.20, pc_pool_size=32, reuse_fraction=0.80, reuse_window_lines=16384, reuse_skew=8.0, pointer_chase_fraction=0.70,
    ),
    WorkloadProfile(
        name="omnetpp_like",
        description="discrete-event network simulator; heap-allocated event objects",
        instructions_per_memory_op=6.0,
        sequential_fraction=0.20, strided_fraction=0.10, random_fraction=0.70,
        working_set_bytes=40 * _MIB, write_fraction=0.30, pc_pool_size=56,
        reuse_fraction=0.76, reuse_window_lines=16384, reuse_skew=8.0, pointer_chase_fraction=0.60,
        phases=(PhaseSpec(ops=3500, memory_scale=1.3, random_scale=1.2),
                PhaseSpec(ops=3500, memory_scale=0.8, random_scale=0.9)),
    ),
    WorkloadProfile(
        name="bzip2_like",
        description="compression; block-local with periodic table scans",
        instructions_per_memory_op=9.0,
        sequential_fraction=0.55, strided_fraction=0.15, random_fraction=0.30,
        working_set_bytes=8 * _MIB, write_fraction=0.40, pc_pool_size=48, reuse_fraction=0.88, reuse_window_lines=8192, reuse_skew=7.0,
        phases=(PhaseSpec(ops=6000, memory_scale=1.0),
                PhaseSpec(ops=2000, memory_scale=1.6, random_scale=1.5)),
    ),
    WorkloadProfile(
        name="sjeng_like",
        description="chess search; branchy compute with transposition-table probes",
        instructions_per_memory_op=11.0,
        sequential_fraction=0.30, strided_fraction=0.10, random_fraction=0.60,
        working_set_bytes=6 * _MIB, write_fraction=0.25, pc_pool_size=72,
        reuse_fraction=0.90, reuse_window_lines=4096, reuse_skew=7.0,
    ),
    WorkloadProfile(
        name="hmmer_like",
        description="profile HMM search; hot inner loop, small working set",
        instructions_per_memory_op=10.0,
        sequential_fraction=0.70, strided_fraction=0.20, random_fraction=0.10,
        working_set_bytes=4 * _MIB, write_fraction=0.25, pc_pool_size=16, reuse_fraction=0.93, reuse_window_lines=4096, reuse_skew=7.0,
    ),
    WorkloadProfile(
        name="perlbench_like",
        description="interpreter; branchy, mostly cache-resident",
        instructions_per_memory_op=9.0,
        sequential_fraction=0.45, strided_fraction=0.10, random_fraction=0.45,
        working_set_bytes=2 * _MIB, write_fraction=0.35, pc_pool_size=96, reuse_fraction=0.92, reuse_window_lines=4096, reuse_skew=7.0,
    ),
    WorkloadProfile(
        name="povray_like",
        description="ray tracing; compute-bound, tiny hot working set",
        instructions_per_memory_op=14.0,
        sequential_fraction=0.60, strided_fraction=0.20, random_fraction=0.20,
        working_set_bytes=1 * _MIB, write_fraction=0.20, pc_pool_size=32, reuse_fraction=0.96, reuse_window_lines=1024, reuse_skew=6.0,
    ),
]

PROFILES: Dict[str, WorkloadProfile] = {p.name: p for p in _ALL_PROFILES}

# Profiles whose working set decisively exceeds the default 2 MiB L2.
_MEMORY_BOUND = ("mcf_like", "gems_like", "libquantum_like", "lbm_like", "milc_like", "soplex_like")


def profile_names() -> List[str]:
    """All profile names in memory-boundedness order (most bound first)."""
    return [p.name for p in _ALL_PROFILES]


def memory_bound_profiles() -> List[str]:
    """The subset of clearly memory-bound profiles (used by F3/F5 sweeps)."""
    return list(_MEMORY_BOUND)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by name with a helpful error message."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(profile_names())
        raise ConfigError(f"unknown workload profile {name!r}; known: {known}") from None
