"""Synthetic trace generator.

Turns a :class:`~repro.workloads.profiles.WorkloadProfile` into a stream of
trace operations.  The generator maintains three address streams —
sequential, strided, random — inside the profile's working set, draws each
access's stream per the profile mix (modulated by the active phase), and
separates compute stretches with geometrically-distributed gaps whose mean
matches the profile's memory intensity.

Two locality mechanisms make the traces cache-realistic:

* **temporal reuse** — with probability ``reuse_fraction`` an access
  re-touches one of the last ``reuse_window_lines`` lines (these land in
  L1, like register-spill and hot-variable traffic);
* **spatial reuse** — the sequential stream advances
  ``sequential_step_bytes`` per access, so one 64 B line absorbs several
  consecutive accesses before the stream moves on.

Program counters: each stream owns a disjoint slice of the profile's PC
pool, and accesses pick PCs Zipf-style (a few hot PCs dominate), which is
what gives per-PC latency predictors something to learn.

Everything is seeded; two generators with the same (profile, seed) produce
identical traces.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.trace.format import ComputeBlock, MemoryAccess, TraceOp
from repro.workloads.profiles import WorkloadProfile, get_profile

_LINE_BYTES = 64
# Disjoint virtual regions so streams never alias each other's lines.
_REGION_SPACING = 1 << 36


class SyntheticTraceGenerator:
    """Deterministic, profile-driven trace source."""

    def __init__(self, profile: WorkloadProfile, seed: int = 1) -> None:
        self.profile = profile
        # CRC32, not hash(): Python randomizes string hashes per process,
        # which would make "deterministic" traces differ across runs.
        name_hash = zlib.crc32(profile.name.encode("utf-8"))
        self._rng = random.Random(name_hash ^ seed)
        # Dependence marking draws from its own stream so that enabling or
        # tuning pointer chasing never perturbs the address sequence.
        self._dependence_rng = random.Random(name_hash ^ seed ^ 0x5A5A5A)
        self._schedule = profile.phase_schedule()
        self._op_index = 0
        # Stream state: byte cursors within each stream's region.
        self._seq_cursor = 0
        self._stride_cursor = 0
        # Recency ring buffer of (address, stream): O(1) append and O(1)
        # indexed access, which the skewed stack-distance draw needs.
        self._recent: List[Tuple[int, int]] = []
        self._recent_head = 0
        self._pc_pool = self._build_pc_pool()

    def _build_pc_pool(self) -> List[int]:
        # Synthetic text segment: word-aligned PCs starting at 0x400000.
        return [0x40_0000 + 4 * i for i in range(self.profile.pc_pool_size)]

    def _pick_pc(self, stream: int) -> int:
        """Zipf-ish PC choice within the stream's third of the pool."""
        pool = self.profile.pc_pool_size
        third = max(1, pool // 3)
        base = stream * third
        # Geometric rank: rank 0 (hottest) twice as likely as rank 1, etc.
        rank = 0
        while rank < third - 1 and self._rng.random() < 0.5:
            rank += 1
        return self._pc_pool[(base + rank) % pool]

    def _next_address(self, random_scale: float) -> "tuple[int, int, bool]":
        """Draw (address, stream id, fresh) per the phase-modulated mix.

        ``fresh`` is True when the address came from a pattern stream (not
        the reuse window) — only fresh random draws can be pointer-chase
        dependent.
        """
        profile = self.profile

        # Temporal reuse: revisit a recent line, with a power-law recency
        # skew — distance = window * u^skew, so most draws are near (L1
        # hits) while the tail exercises mid-distance (L2 capacity) reuse.
        if self._recent and self._rng.random() < profile.reuse_fraction:
            count = len(self._recent)
            distance = int(count * self._rng.random() ** profile.reuse_skew)
            distance = min(distance, count - 1)
            index = (self._recent_head - 1 - distance) % count
            address, stream = self._recent[index]
            return address, stream, False  # reuse: value cached, no chase

        rnd = min(1.0, profile.random_fraction * random_scale)
        remaining = max(0.0, 1.0 - rnd)
        base_other = profile.sequential_fraction + profile.strided_fraction
        if base_other > 0.0:
            seq = remaining * profile.sequential_fraction / base_other
        else:
            seq = remaining
        draw = self._rng.random()
        working_set = profile.working_set_bytes
        if draw < seq:
            stream = 0
            self._seq_cursor = (
                self._seq_cursor + profile.sequential_step_bytes) % working_set
            offset = self._seq_cursor
        elif draw < remaining:
            stream = 1
            self._stride_cursor = (self._stride_cursor + profile.stride_bytes) % working_set
            offset = self._stride_cursor
        else:
            stream = 2
            offset = self._rng.randrange(0, working_set, _LINE_BYTES)
        address = stream * _REGION_SPACING + offset
        self._remember(address, stream)
        return address, stream, True

    def _remember(self, address: int, stream: int) -> None:
        """Push a fresh address into the recency ring buffer."""
        window = self.profile.reuse_window_lines
        if len(self._recent) < window:
            self._recent.append((address, stream))
            self._recent_head = len(self._recent) % window
        else:
            self._recent[self._recent_head] = (address, stream)
            self._recent_head = (self._recent_head + 1) % window

    def _compute_gap(self, memory_scale: float) -> int:
        """Geometric compute-run length matching the phase's intensity."""
        mean_gap = max(0.0, self.profile.instructions_per_memory_op / memory_scale - 1.0)
        if mean_gap < 1e-9:
            return 0
        # Geometric distribution with the requested mean (p = 1/(mean+1)).
        success_probability = 1.0 / (mean_gap + 1.0)
        gap = 0
        while self._rng.random() > success_probability:
            gap += 1
            if gap >= 10_000:  # hard ceiling; mean gaps are single digits
                break
        return gap

    def operations(self, num_ops: int) -> Iterator[TraceOp]:
        """Yield ``num_ops`` trace records (compute blocks + accesses)."""
        if num_ops < 0:
            raise ConfigError(f"num_ops must be >= 0, got {num_ops}")
        produced = 0
        while produced < num_ops:
            phase = self._schedule.phase_at(self._op_index)
            self._op_index += 1
            gap = self._compute_gap(phase.memory_scale)
            if gap > 0 and produced < num_ops:
                yield ComputeBlock(instructions=gap)
                produced += 1
                if produced >= num_ops:
                    return
            address, stream, fresh = self._next_address(phase.random_scale)
            is_write = self._rng.random() < self.profile.write_fraction
            dependent = (
                fresh and stream == 2
                and self.profile.pointer_chase_fraction > 0.0
                and self._dependence_rng.random()
                < self.profile.pointer_chase_fraction)
            yield MemoryAccess(address=address, pc=self._pick_pc(stream),
                               is_write=is_write, dependent=dependent)
            produced += 1


def generate_trace(profile_name: str, num_ops: int, seed: int = 1,
                   profile: Optional[WorkloadProfile] = None) -> List[TraceOp]:
    """Convenience wrapper: a fully materialized trace for a named profile.

    Passing ``profile`` overrides the name lookup (used to generate traces
    for ad-hoc profiles in tests and sweeps).
    """
    chosen = profile if profile is not None else get_profile(profile_name)
    generator = SyntheticTraceGenerator(chosen, seed=seed)
    return list(generator.operations(num_ops))
