"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, DramConfig, GatingConfig, SystemConfig
from repro.power.gating import SleepTransistorNetwork
from repro.power.model import CorePowerModel
from repro.power.technology import get_technology


@pytest.fixture
def tech45():
    return get_technology("45nm")


@pytest.fixture
def circuit45(tech45):
    """Characterized 45 nm gating circuit at 2 GHz, 12-stage pipeline."""
    return SleepTransistorNetwork(tech45).characterize(2e9, pipeline_depth=12)


@pytest.fixture
def power_model(circuit45):
    return CorePowerModel(circuit45)


@pytest.fixture
def tiny_l1():
    """A small L1 that forces evictions quickly in tests."""
    return CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                       associativity=2, hit_latency_cycles=2, mshr_entries=4)


@pytest.fixture
def tiny_l2():
    return CacheConfig(name="L2", size_bytes=4096, line_bytes=64,
                       associativity=4, hit_latency_cycles=10, mshr_entries=4)


@pytest.fixture
def dram_config():
    return DramConfig()


@pytest.fixture
def small_system():
    """A SystemConfig with small caches for fast, eviction-heavy tests."""
    return SystemConfig(
        l1=CacheConfig(name="L1D", size_bytes=2048, line_bytes=64,
                       associativity=2, hit_latency_cycles=2, mshr_entries=4),
        l2=CacheConfig(name="L2", size_bytes=16 * 1024, line_bytes=64,
                       associativity=4, hit_latency_cycles=12, mshr_entries=8),
    )


@pytest.fixture
def gating_config():
    return GatingConfig()
