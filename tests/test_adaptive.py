"""Tests for the adaptive (feedback-controlled) MAPG policy."""

import pytest

from repro.config import GatingConfig, SystemConfig
from repro.core.adaptive import AdaptiveMapgPolicy
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.wakeup import WakeupPlan
from repro.errors import ConfigError
from repro.predict.table import HistoryTablePredictor
from repro.sim.runner import run_workload, with_policy

STATIC = 180


@pytest.fixture
def policy(circuit45):
    config = GatingConfig(policy="mapg_adaptive")
    analyzer = BreakEvenAnalyzer(circuit45, config)
    return AdaptiveMapgPolicy(
        analyzer, HistoryTablePredictor(initial_cycles=STATIC), config, STATIC)


def plan(penalty=0, idle=0):
    return WakeupPlan(drain=14, sleep=100, wake=17,
                      idle_awake=idle, penalty=penalty)


class TestBiasAdaptation:
    def test_starts_at_configured_margin(self, policy):
        assert policy.bias_cycles == policy.config.early_margin_cycles

    def test_late_wake_increases_bias(self, policy):
        before = policy.bias_cycles
        policy.feedback(plan(penalty=10))
        assert policy.bias_cycles == before + policy._INCREASE_CYCLES

    def test_bias_capped(self, policy):
        for __ in range(100):
            policy.feedback(plan(penalty=10))
        assert policy.bias_cycles == policy._BIAS_CAP_CYCLES

    def test_long_idle_decays_bias(self, policy):
        policy.feedback(plan(penalty=10))
        policy.feedback(plan(penalty=10))
        inflated = policy.bias_cycles
        for __ in range(20):
            policy.feedback(plan(idle=100))
        assert policy.bias_cycles < inflated

    def test_on_target_wake_leaves_bias_alone(self, policy):
        before = policy.bias_cycles
        policy.feedback(plan(penalty=0, idle=5))
        assert policy.bias_cycles == before

    def test_feedback_requires_plan(self, policy):
        with pytest.raises(ConfigError):
            policy.feedback("not a plan")

    def test_decision_uses_adapted_bias(self, policy):
        for __ in range(10):
            policy.observe(0x400000, 0, 300)
        offset_before = policy.decide(0x400000, 0, 300).planned_wake_offset
        for __ in range(5):
            policy.feedback(plan(penalty=10))
        offset_after = policy.decide(0x400000, 0, 300).planned_wake_offset
        assert offset_after < offset_before  # wakes earlier now


class TestEndToEnd:
    def test_adaptive_policy_runs_and_performs(self):
        config = SystemConfig()
        base = run_workload(with_policy(config, "never"), "mcf_like", 3000, seed=7)
        fixed = run_workload(with_policy(config, "mapg"), "mcf_like", 3000, seed=7)
        adaptive = run_workload(with_policy(config, "mapg_adaptive"),
                                "mcf_like", 3000, seed=7)
        delta = adaptive.compare(base)
        delta_fixed = fixed.compare(base)
        assert delta.energy_saving > 0.0
        # Stays in the same performance class as stock MAPG.
        assert delta.performance_penalty < delta_fixed.performance_penalty + 0.02

    def test_adaptive_accepted_by_config(self):
        assert GatingConfig(policy="mapg_adaptive").policy == "mapg_adaptive"
