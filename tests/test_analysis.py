"""Tests for tables, reports, and cross-run aggregation."""

import pytest

from repro.analysis.energy import (
    geomean_edp_ratio,
    mean_energy_saving,
    mean_penalty,
    summarize_comparisons,
)
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct, format_table
from repro.errors import SimulationError
from repro.sim.results import ComparisonResult, SimulationResult


def make_result(workload, policy, cycles, energy, penalty=0):
    return SimulationResult(
        workload=workload, policy=policy, instructions=1000,
        total_cycles=cycles, penalty_cycles=penalty, energy_j=energy,
        event_energy_j=0.0, event_count=0)


class TestFormatting:
    def test_fraction_pct(self):
        assert format_fraction_pct(0.1234) == "12.3 %"
        assert format_fraction_pct(0.1234, precision=2) == "12.34 %"

    def test_table_alignment(self):
        table = format_table(["name", "value"],
                             [["alpha", "1.5"], ["b", "22.0"]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        # Numeric column right-aligns.
        assert lines[2].endswith("1.5")
        assert lines[3].endswith("22.0")

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_table_title(self):
        table = format_table(["a"], [["1"]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_empty_body(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestReport:
    def test_render_contains_id_and_rows(self):
        report = ExperimentReport("F2", "Policy comparison",
                                  headers=["workload", "saving"])
        report.add_row("mcf_like", "25.0 %")
        report.add_note("MAPG recovers most of oracle")
        text = report.render()
        assert "[F2]" in text
        assert "mcf_like" in text
        assert "note: MAPG" in text

    def test_str_is_render(self):
        report = ExperimentReport("T1", "Config", headers=["k", "v"])
        assert str(report) == report.render()


class TestSummarize:
    def matrix(self):
        return {
            "mcf_like": {
                "never": make_result("mcf_like", "never", 1000, 2.0),
                "mapg": make_result("mcf_like", "mapg", 1020, 1.5, penalty=20),
                "naive": make_result("mcf_like", "naive", 1100, 1.6, penalty=100),
            },
            "gcc_like": {
                "never": make_result("gcc_like", "never", 1000, 1.0),
                "mapg": make_result("gcc_like", "mapg", 1010, 0.9, penalty=10),
                "naive": make_result("gcc_like", "naive", 1050, 0.95, penalty=50),
            },
        }

    def test_summary_excludes_baseline(self):
        comparisons = summarize_comparisons(self.matrix())
        assert set(comparisons) == {"mapg", "naive"}
        assert len(comparisons["mapg"]) == 2

    def test_missing_baseline_rejected(self):
        matrix = self.matrix()
        del matrix["mcf_like"]["never"]
        with pytest.raises(SimulationError):
            summarize_comparisons(matrix)

    def test_mean_saving_and_penalty(self):
        comparisons = summarize_comparisons(self.matrix())["mapg"]
        assert mean_energy_saving(comparisons) == pytest.approx(
            ((1 - 1.5 / 2.0) + (1 - 0.9 / 1.0)) / 2)
        assert mean_penalty(comparisons) == pytest.approx(
            ((1020 / 1000 - 1) + (1010 / 1000 - 1)) / 2)

    def test_geomean_edp(self):
        comparisons = summarize_comparisons(self.matrix())["mapg"]
        value = geomean_edp_ratio(comparisons)
        assert 0.0 < value < 1.0

    def test_empty_comparisons_rejected(self):
        with pytest.raises(SimulationError):
            mean_energy_saving([])
        with pytest.raises(SimulationError):
            mean_penalty([])
        with pytest.raises(SimulationError):
            geomean_edp_ratio([])
