"""Tests for the terminal chart helpers and timeline recording."""

import pytest

from repro.analysis.ascii_chart import bar_chart, sparkline, timeline_row
from repro.config import SystemConfig
from repro.sim.runner import with_policy
from repro.sim.simulator import Simulator
from repro.workloads import generate_trace


class TestBarChart:
    def test_longest_bar_belongs_to_largest_value(self):
        chart = bar_chart(["a", "b"], [10.0, 100.0])
        lines = chart.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_values_printed(self):
        chart = bar_chart(["x"], [42.0], unit=" W")
        assert "42 W" in chart

    def test_title(self):
        chart = bar_chart(["x"], [1.0], title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_negative_values_draw_left_of_axis(self):
        chart = bar_chart(["gain", "loss"], [5.0, -5.0])
        gain_line, loss_line = chart.splitlines()
        assert gain_line.index("|") < gain_line.index("#")
        assert loss_line.index("#") < loss_line.index("|")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([], [])

    def test_all_zero_values_no_crash(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in chart


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_input_monotone_glyphs(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line)

    def test_constant_input(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestTimelineRow:
    def test_proportional_widths(self):
        row = timeline_row([("sleep", 90), ("wake", 10)], width=100,
                           glyphs={"sleep": "S", "wake": "W"})
        assert row.count("S") > 5 * row.count("W")

    def test_short_segments_still_visible(self):
        row = timeline_row([("drain", 1), ("sleep", 999)], width=40,
                           glyphs={"drain": "D", "sleep": "S"})
        assert "D" in row

    def test_unmapped_state_uses_first_letter(self):
        row = timeline_row([("stall", 10)], width=10)
        assert set(row) == {"s"}

    def test_zero_length_segments_skipped(self):
        row = timeline_row([("a", 0), ("b", 10)], width=10)
        assert "a" not in row

    def test_empty_and_invalid(self):
        assert timeline_row([]) == ""
        with pytest.raises(ValueError):
            timeline_row([("a", -1)])


class TestTimelineRecording:
    def test_disabled_by_default(self):
        simulator = Simulator(with_policy(SystemConfig(), "mapg"))
        simulator.run(generate_trace("gcc_like", 300, seed=1))
        assert simulator.timeline == []

    def test_records_every_offchip_stall(self):
        simulator = Simulator(with_policy(SystemConfig(), "mapg"),
                              record_timeline=True)
        result = simulator.run(generate_trace("gcc_like", 300, seed=1))
        assert len(simulator.timeline) == result.offchip_stalls

    def test_event_intervals_tile_stall_plus_penalty(self):
        simulator = Simulator(with_policy(SystemConfig(), "naive"),
                              record_timeline=True)
        simulator.run(generate_trace("mcf_like", 300, seed=1))
        for event in simulator.timeline:
            tiled = sum(cycles for __, cycles in event.intervals)
            assert tiled == event.stall_cycles + event.penalty_cycles

    def test_ungated_events_marked(self):
        simulator = Simulator(with_policy(SystemConfig(), "never"),
                              record_timeline=True)
        simulator.run(generate_trace("gcc_like", 300, seed=1))
        assert all(not event.gated for event in simulator.timeline)
        assert all(event.mode == "" for event in simulator.timeline)
