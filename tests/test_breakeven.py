"""Tests for the break-even decision math."""

import pytest

from repro.config import GatingConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.errors import ConfigError


@pytest.fixture
def analyzer(circuit45):
    return BreakEvenAnalyzer(circuit45, GatingConfig(guard_margin_cycles=10))


class TestThresholds:
    def test_bet_scales_with_config(self, circuit45):
        base = BreakEvenAnalyzer(circuit45, GatingConfig(bet_scale=1.0))
        doubled = BreakEvenAnalyzer(circuit45, GatingConfig(bet_scale=2.0))
        assert doubled.bet_cycles == pytest.approx(2 * base.bet_cycles, abs=1)

    def test_wake_scales_with_config(self, circuit45):
        base = BreakEvenAnalyzer(circuit45, GatingConfig(wake_scale=1.0))
        tripled = BreakEvenAnalyzer(circuit45, GatingConfig(wake_scale=3.0))
        assert tripled.wake_cycles == pytest.approx(3 * base.wake_cycles, abs=1)

    def test_zero_wake_scale_allowed(self, circuit45):
        analyzer = BreakEvenAnalyzer(circuit45, GatingConfig(wake_scale=0.0))
        assert analyzer.wake_cycles == 0

    def test_min_gateable_composition(self, analyzer):
        assert analyzer.min_gateable_stall_cycles == (
            analyzer.drain_cycles + analyzer.wake_cycles + analyzer.bet_cycles)


class TestAchievableSleep:
    def test_long_stall(self, analyzer):
        stall = 500
        assert analyzer.achievable_sleep_cycles(stall) == (
            stall - analyzer.drain_cycles - analyzer.wake_cycles)

    def test_short_stall_clamps_to_zero(self, analyzer):
        assert analyzer.achievable_sleep_cycles(5) == 0

    def test_negative_rejected(self, analyzer):
        with pytest.raises(ConfigError):
            analyzer.achievable_sleep_cycles(-1)


class TestWorthwhile:
    def test_long_stall_worthwhile(self, analyzer):
        assert analyzer.worthwhile(10_000)

    def test_tiny_stall_not_worthwhile(self, analyzer):
        assert not analyzer.worthwhile(analyzer.drain_cycles)

    def test_margin_tightens_threshold(self, analyzer):
        boundary = (analyzer.drain_cycles + analyzer.wake_cycles
                    + analyzer.bet_cycles)
        assert analyzer.worthwhile(boundary, apply_margin=False)
        assert not analyzer.worthwhile(boundary, apply_margin=True)
        assert analyzer.worthwhile(
            boundary + analyzer.config.guard_margin_cycles, apply_margin=True)


class TestNetSaving:
    def test_positive_for_long_stall(self, analyzer):
        assert analyzer.net_saving_j(5000) > 0.0

    def test_negative_for_ungateable_stall(self, analyzer):
        assert analyzer.net_saving_j(3) < 0.0

    def test_monotone_in_stall_length(self, analyzer):
        savings = [analyzer.net_saving_j(n) for n in (100, 300, 1000, 3000)]
        assert savings == sorted(savings)
