"""Tests for the set-associative cache model."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import Cache


def make_cache(sets=4, ways=2, line=64, replacement="lru", **kwargs):
    size = sets * ways * line
    return Cache(CacheConfig(name="T", size_bytes=size, line_bytes=line,
                             associativity=ways, replacement=replacement,
                             **kwargs))


class TestBasicHitMiss:
    def test_first_access_misses_second_hits(self):
        cache = make_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit

    def test_same_line_different_offset_hits(self):
        cache = make_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x103F).hit

    def test_adjacent_line_misses(self):
        cache = make_cache(line=64)
        cache.access(0x1000)
        assert not cache.access(0x1040).hit

    def test_line_address(self):
        cache = make_cache(line=64)
        assert cache.line_address(0x1234) == 0x1200

    def test_counters(self):
        cache = make_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x40)
        assert cache.counters.get("accesses") == 3
        assert cache.counters.get("hits") == 1
        assert cache.counters.get("misses") == 2
        assert cache.hit_rate == pytest.approx(1 / 3)


class TestLru:
    def test_lru_evicts_least_recently_used(self):
        cache = make_cache(sets=1, ways=2)
        cache.access(0x000)   # way A
        cache.access(0x040)   # way B
        cache.access(0x000)   # touch A -> B is LRU
        cache.access(0x080)   # evicts B
        assert cache.probe(0x000)
        assert not cache.probe(0x040)

    def test_lru_full_set_cycles(self):
        cache = make_cache(sets=1, ways=4)
        for i in range(4):
            cache.access(i * 0x40)
        cache.access(4 * 0x40)  # evicts line 0
        assert not cache.probe(0x000)
        assert all(cache.probe(i * 0x40) for i in range(1, 5))


class TestPlru:
    def test_plru_victim_is_not_most_recent(self):
        cache = make_cache(sets=1, ways=4, replacement="plru")
        for i in range(4):
            cache.access(i * 0x40)
        most_recent = 3 * 0x40
        cache.access(4 * 0x40)  # forces an eviction
        assert cache.probe(most_recent)

    def test_plru_hits_still_work(self):
        cache = make_cache(sets=2, ways=4, replacement="plru")
        cache.access(0x0)
        assert cache.access(0x0).hit


class TestRandom:
    def test_random_replacement_deterministic_with_seed(self):
        config = CacheConfig(name="T", size_bytes=512, line_bytes=64,
                             associativity=4, replacement="random")
        results_a = []
        results_b = []
        for results in (results_a, results_b):
            cache = Cache(config, seed=7)
            for i in range(20):
                results.append(cache.access(i * 0x40 % 0x400).hit)
        assert results_a == results_b


class TestWriteback:
    def test_dirty_eviction_reports_writeback_address(self):
        cache = make_cache(sets=1, ways=1)
        cache.access(0x000, is_write=True)
        result = cache.access(0x040)
        assert result.writeback_address == 0x000

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(sets=1, ways=1)
        cache.access(0x000, is_write=False)
        result = cache.access(0x040)
        assert result.writeback_address is None

    def test_write_hit_marks_dirty(self):
        cache = make_cache(sets=1, ways=1)
        cache.access(0x000, is_write=False)
        cache.access(0x000, is_write=True)  # hit, marks dirty
        result = cache.access(0x040)
        assert result.writeback_address == 0x000

    def test_writeback_address_maps_to_same_set(self):
        cache = make_cache(sets=4, ways=1)
        address = 4 * 0x40 * 3 + 0x40  # set 1, some tag
        cache.access(address, is_write=True)
        conflicting = address + 4 * 0x40  # same set, different tag
        result = cache.access(conflicting)
        assert result.writeback_address == cache.line_address(address)


class TestMaintenance:
    def test_probe_does_not_update_state(self):
        cache = make_cache(sets=1, ways=2)
        cache.access(0x000)
        cache.access(0x040)
        cache.probe(0x000)  # must NOT refresh LRU position of line 0
        cache.access(0x080)
        assert not cache.probe(0x000)  # line 0 was still LRU

    def test_invalidate_drops_line(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.probe(0x1000)

    def test_invalidate_missing_line_returns_false(self):
        assert not make_cache().invalidate(0x9000)

    def test_flush_returns_dirty_lines(self):
        cache = make_cache(sets=2, ways=2)
        cache.access(0x000, is_write=True)
        cache.access(0x040, is_write=False)
        dirty = cache.flush()
        assert dirty == [0x000]
        assert not cache.probe(0x000)
        assert not cache.probe(0x040)


class TestGeometry:
    def test_distinct_sets_do_not_conflict(self):
        cache = make_cache(sets=4, ways=1)
        # Fill every set; none should evict another.
        for set_index in range(4):
            cache.access(set_index * 0x40)
        assert all(cache.probe(set_index * 0x40) for set_index in range(4))

    def test_single_set_cache(self):
        cache = make_cache(sets=1, ways=4)
        cache.access(0x0)
        assert cache.access(0x0).hit

    def test_direct_mapped(self):
        cache = make_cache(sets=4, ways=1)
        cache.access(0x000)
        cache.access(0x400)  # same set (4 sets * 64 B span = 0x100... depends)
        # 4 sets of 64 B lines: set = (addr >> 6) & 3; 0x000 and 0x100 share set 0.
        cache2 = make_cache(sets=4, ways=1)
        cache2.access(0x000)
        cache2.access(0x100)
        assert not cache2.probe(0x000)
