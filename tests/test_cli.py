"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.version import __version__


class TestRun:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "gcc_like", "--ops", "800", "--policy", "mapg"]) == 0
        out = capsys.readouterr().out
        assert "gcc_like / mapg" in out
        assert "total cycles" in out

    def test_run_baseline_deltas(self, capsys):
        assert main(["run", "gcc_like", "--ops", "800", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "vs never-gate baseline" in out
        assert "EDP ratio" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "gcc_like", "--ops", "800", "--json",
                     "--baseline"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "gcc_like"
        assert payload["policy"] == "mapg"
        assert "vs_never" in payload
        assert payload["total_cycles"] > 0

    def test_run_deterministic_per_seed(self, capsys):
        main(["run", "gcc_like", "--ops", "800", "--json", "--seed", "3"])
        first = json.loads(capsys.readouterr().out)
        main(["run", "gcc_like", "--ops", "800", "--json", "--seed", "3"])
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_unknown_workload_is_clean_error(self, capsys):
        assert main(["run", "nonexistent_like", "--ops", "100"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_temperature_flag(self, capsys):
        assert main(["run", "gcc_like", "--ops", "800",
                     "--temperature", "110"]) == 0


class TestCompare:
    def test_compare_matrix(self, capsys):
        assert main(["compare", "--workloads", "gcc_like",
                     "--policies", "never", "mapg", "--ops", "600"]) == 0
        out = capsys.readouterr().out
        assert "gcc_like" in out
        assert "mapg" in out
        # never is the baseline, not a row.
        assert out.count("never") <= 1

    def test_compare_adds_missing_baseline(self, capsys):
        assert main(["compare", "--workloads", "gcc_like",
                     "--policies", "naive", "--ops", "600"]) == 0
        assert "naive" in capsys.readouterr().out


class TestCircuit:
    def test_circuit_table(self, capsys):
        assert main(["circuit", "--nodes", "45nm", "32nm"]) == 0
        out = capsys.readouterr().out
        assert "45nm" in out and "32nm" in out
        assert "BET (cyc)" in out

    def test_unknown_node_error(self, capsys):
        assert main(["circuit", "--nodes", "22nm"]) == 2


class TestSweep:
    @pytest.mark.parametrize("axis,value", [
        ("bet", "1.0"), ("wake", "1.0"), ("dram", "1.0"),
        ("temperature", "85.0"),
    ])
    def test_each_axis_runs(self, capsys, axis, value):
        assert main(["sweep", axis, "--workload", "gcc_like",
                     "--ops", "500", "--values", value]) == 0
        out = capsys.readouterr().out
        assert "sweep on gcc_like" in out


class TestMulticore:
    def test_two_cores_with_tokens(self, capsys):
        assert main(["multicore", "gcc_like", "gcc_like",
                     "--ops", "500", "--tokens", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 cores" in out
        assert "token arbitration" in out

    def test_tokens_off_by_default(self, capsys):
        assert main(["multicore", "gcc_like", "gcc_like", "--ops", "500"]) == 0
        out = capsys.readouterr().out
        assert "tokens off" in out
        assert "token arbitration" not in out


class TestRunExtensionFlags:
    def test_sleep_mode_flag(self, capsys):
        assert main(["run", "mcf_like", "--ops", "600",
                     "--sleep-mode", "retention"]) == 0

    def test_prefetch_flag(self, capsys):
        assert main(["run", "libquantum_like", "--ops", "600",
                     "--prefetch-degree", "4"]) == 0

    def test_miss_window_flag(self, capsys):
        assert main(["run", "mcf_like", "--ops", "600",
                     "--miss-window", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_cycles"] > 0

    def test_window_changes_result(self, capsys):
        main(["run", "mcf_like", "--ops", "600", "--json"])
        blocking = json.loads(capsys.readouterr().out)
        main(["run", "mcf_like", "--ops", "600", "--miss-window", "8",
              "--json"])
        windowed = json.loads(capsys.readouterr().out)
        assert windowed["total_cycles"] < blocking["total_cycles"]


class TestTraceFileRun:
    def test_run_on_trace_file(self, capsys, tmp_path):
        path = str(tmp_path / "t.bin")
        assert main(["trace", "generate", "gcc_like", path, "--ops", "400"]) == 0
        capsys.readouterr()
        assert main(["run", path, "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "vs never-gate baseline" in out

    def test_missing_trace_file_is_clean_error(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "missing.bin")]) == 2
        assert "error:" in capsys.readouterr().err


class TestVariation:
    def test_population_table(self, capsys):
        assert main(["variation", "--dies", "6", "--sigma", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "6 virtual dies" in out
        assert "dies losing energy" in out

    def test_unknown_node_error(self, capsys):
        assert main(["variation", "--technology", "22nm"]) == 2


class TestProfilesAndTrace:
    def test_profiles_lists_all(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "mcf_like" in out and "povray_like" in out

    def test_trace_generate_and_info(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert main(["trace", "generate", "gcc_like", path,
                     "--ops", "200"]) == 0
        assert main(["trace", "info", path]) == 0
        out = capsys.readouterr().out
        assert "memory_accesses" in out

    def test_trace_bad_suffix_error(self, capsys, tmp_path):
        path = str(tmp_path / "t.csv")
        assert main(["trace", "generate", "gcc_like", path,
                     "--ops", "10"]) == 2


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
