"""Tests for repro.config: validation and serialization."""

import pytest

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    GatingConfig,
    SystemConfig,
    TokenConfig,
    default_config,
)
from repro.errors import ConfigError


class TestCoreConfig:
    def test_defaults_valid(self):
        config = CoreConfig()
        assert config.frequency_hz == 2e9
        assert config.cycle_time_s == pytest.approx(0.5e-9)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigError):
            CoreConfig(frequency_hz=0.0)

    def test_rejects_zero_pipeline(self):
        with pytest.raises(ConfigError):
            CoreConfig(pipeline_depth=0)

    def test_rejects_mlp_above_one(self):
        with pytest.raises(ConfigError):
            CoreConfig(mlp_overlap=1.5)

    def test_rejects_negative_mlp(self):
        with pytest.raises(ConfigError):
            CoreConfig(mlp_overlap=-0.1)


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=8)
        assert config.num_sets == 64

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(line_bytes=48)

    def test_rejects_size_smaller_than_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=32, line_bytes=64)

    def test_rejects_non_power_of_two_sets(self):
        # 3 KiB / 64 B / 8 ways = 6 sets -> invalid.
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=3 * 1024, line_bytes=64, associativity=8)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ConfigError):
            CacheConfig(replacement="fifo")

    def test_accepts_all_known_replacements(self):
        for policy in ("lru", "random", "plru"):
            assert CacheConfig(replacement=policy).replacement == policy

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="")

    def test_rejects_zero_mshr(self):
        with pytest.raises(ConfigError):
            CacheConfig(mshr_entries=0)


class TestDramConfig:
    def test_total_banks(self):
        config = DramConfig(channels=2, ranks_per_channel=2, banks_per_rank=8)
        assert config.total_banks == 32

    def test_scaled_multiplies_all_latencies(self):
        base = DramConfig()
        doubled = base.scaled(2.0)
        assert doubled.t_cas_ns == pytest.approx(2 * base.t_cas_ns)
        assert doubled.t_rp_ns == pytest.approx(2 * base.t_rp_ns)
        assert doubled.controller_overhead_ns == pytest.approx(
            2 * base.controller_overhead_ns)

    def test_scaled_preserves_organization(self):
        doubled = DramConfig().scaled(2.0)
        assert doubled.banks_per_rank == DramConfig().banks_per_rank

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            DramConfig().scaled(0.0)

    def test_rejects_negative_timing(self):
        with pytest.raises(ConfigError):
            DramConfig(t_cas_ns=-1.0)

    def test_rejects_bad_row_policy(self):
        with pytest.raises(ConfigError):
            DramConfig(row_policy="adaptive")

    def test_rejects_non_power_of_two_row(self):
        with pytest.raises(ConfigError):
            DramConfig(row_bytes=3000)


class TestGatingConfig:
    def test_defaults_valid(self):
        config = GatingConfig()
        assert config.policy == "mapg"

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            GatingConfig(policy="aggressive")

    def test_rejects_unknown_predictor(self):
        with pytest.raises(ConfigError):
            GatingConfig(predictor="neural")

    def test_rejects_negative_margin(self):
        with pytest.raises(ConfigError):
            GatingConfig(guard_margin_cycles=-1)

    def test_rejects_confidence_out_of_range(self):
        with pytest.raises(ConfigError):
            GatingConfig(min_confidence=1.5)

    def test_rejects_zero_bet_scale(self):
        with pytest.raises(ConfigError):
            GatingConfig(bet_scale=0.0)


class TestTokenConfig:
    def test_rejects_zero_tokens(self):
        with pytest.raises(ConfigError):
            TokenConfig(wake_tokens=0)

    def test_rejects_negative_limit(self):
        with pytest.raises(ConfigError):
            TokenConfig(token_wait_limit_cycles=-1)


class TestSystemConfig:
    def test_default_config_valid(self):
        config = default_config()
        assert config.num_cores == 1
        assert config.technology == "45nm"

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                l1=CacheConfig(name="L1D", line_bytes=64),
                l2=CacheConfig(name="L2", size_bytes=2 * 1024 * 1024,
                               line_bytes=128, associativity=16))

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0)

    def test_json_roundtrip(self):
        config = SystemConfig(num_cores=4, technology="32nm")
        restored = SystemConfig.from_json(config.to_json())
        assert restored == config

    def test_dict_roundtrip(self):
        config = default_config()
        assert SystemConfig.from_dict(config.to_dict()) == config

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_json("not json at all {")

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_json("[1, 2, 3]")

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_dict({"core": {"warp_speed": True}})

    def test_replace_returns_modified_copy(self):
        base = default_config()
        modified = base.replace(num_cores=8)
        assert modified.num_cores == 8
        assert base.num_cores == 1
