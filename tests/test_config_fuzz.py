"""Configuration fuzzing: random valid configs must simulate cleanly.

Hypothesis draws structurally-valid system configurations across the whole
feature matrix and runs a short trace through each; whatever the
combination, the accounting invariants must hold and nothing may raise.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CacheConfig,
    CoreConfig,
    GatingConfig,
    PrefetcherConfig,
    SystemConfig,
)
from repro.sim.simulator import Simulator
from repro.workloads import generate_trace

_TRACE = generate_trace("gcc_like", 400, seed=31)
_HEAVY_TRACE = generate_trace("mcf_like", 400, seed=31)


@st.composite
def system_configs(draw):
    core = CoreConfig(
        issue_width=draw(st.sampled_from([1, 2, 4])),
        miss_window=draw(st.sampled_from([1, 2, 4])),
        mlp_overlap=draw(st.sampled_from([0.0, 0.3])),
        pipeline_depth=draw(st.sampled_from([8, 12, 20])),
    )
    l1_kib = draw(st.sampled_from([4, 16, 32]))
    l1 = CacheConfig(name="L1D", size_bytes=l1_kib * 1024, line_bytes=64,
                     associativity=draw(st.sampled_from([1, 2, 4])),
                     hit_latency_cycles=draw(st.sampled_from([1, 3])),
                     replacement=draw(st.sampled_from(["lru", "plru", "random"])),
                     mshr_entries=draw(st.sampled_from([1, 4, 8])))
    l2 = CacheConfig(name="L2", size_bytes=draw(st.sampled_from([64, 256])) * 1024,
                     line_bytes=64, associativity=4,
                     hit_latency_cycles=draw(st.sampled_from([8, 16])),
                     mshr_entries=draw(st.sampled_from([2, 8])))
    gating = GatingConfig(
        policy=draw(st.sampled_from(
            ["never", "naive", "bet_guard", "mapg", "mapg_adaptive", "oracle"])),
        predictor=draw(st.sampled_from(["fixed", "ewma", "table"])),
        sleep_mode=draw(st.sampled_from(["full", "retention", "dual"])),
        early_wakeup=draw(st.booleans()),
        guard_margin_cycles=draw(st.sampled_from([0, 10, 40])),
        bet_scale=draw(st.sampled_from([0.5, 1.0, 4.0])),
        wake_scale=draw(st.sampled_from([0.5, 1.0, 2.0])),
    )
    prefetcher = PrefetcherConfig(
        enabled=draw(st.booleans()),
        degree=draw(st.sampled_from([1, 4])))
    return SystemConfig(core=core, l1=l1, l2=l2, gating=gating,
                        prefetcher=prefetcher,
                        technology=draw(st.sampled_from(
                            ["90nm", "65nm", "45nm", "32nm"])))


@given(config=system_configs(), heavy=st.booleans())
@settings(max_examples=40, deadline=None)
def test_any_valid_config_simulates_cleanly(config, heavy):
    simulator = Simulator(config, workload="fuzz")
    result = simulator.run(_HEAVY_TRACE if heavy else _TRACE)
    assert sum(result.state_cycles.values()) == result.total_cycles
    assert result.energy_j >= 0.0
    assert 0 <= result.penalty_cycles <= result.total_cycles
    assert result.instructions > 0
    # JSON round-trip of whatever config hypothesis built.
    assert SystemConfig.from_json(config.to_json()) == config
