"""Tests for the MAPG controller: outcome tiling and accounting."""

import pytest

from repro.config import GatingConfig, TokenConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.controller import MapgController
from repro.core.policies import NaivePolicy, NeverPolicy, OraclePolicy
from repro.core.token import TokenArbiter
from repro.errors import SimulationError
from repro.power.model import CorePowerModel, PowerState


@pytest.fixture
def analyzer(circuit45):
    return BreakEvenAnalyzer(circuit45, GatingConfig())


def make_controller(policy_cls, analyzer, power_model, **kwargs):
    return MapgController(policy_cls(analyzer), analyzer, power_model, **kwargs)


class TestUngated:
    def test_stall_becomes_single_stall_interval(self, analyzer, power_model):
        controller = make_controller(NeverPolicy, analyzer, power_model)
        outcome = controller.process_stall(pc=0, bank=0, actual_stall_cycles=200)
        assert not outcome.gated
        assert outcome.intervals == ((PowerState.STALL, 200),)
        assert outcome.penalty_cycles == 0
        assert outcome.event_energy_j == 0.0

    def test_zero_length_stall(self, analyzer, power_model):
        controller = make_controller(NeverPolicy, analyzer, power_model)
        outcome = controller.process_stall(pc=0, bank=0, actual_stall_cycles=0)
        assert outcome.intervals == ()

    def test_negative_stall_rejected(self, analyzer, power_model):
        controller = make_controller(NeverPolicy, analyzer, power_model)
        with pytest.raises(SimulationError):
            controller.process_stall(pc=0, bank=0, actual_stall_cycles=-1)


class TestGatedNaive:
    def test_tiling_includes_wake_penalty(self, analyzer, power_model):
        controller = make_controller(NaivePolicy, analyzer, power_model)
        stall = 200
        outcome = controller.process_stall(pc=0, bank=0, actual_stall_cycles=stall)
        assert outcome.gated and not outcome.aborted
        assert outcome.penalty_cycles == analyzer.wake_cycles
        assert outcome.total_cycles == stall + analyzer.wake_cycles
        states = [state for state, __ in outcome.intervals]
        assert states == [PowerState.DRAIN, PowerState.SLEEP, PowerState.WAKE]

    def test_event_energy_charged(self, analyzer, power_model):
        controller = make_controller(NaivePolicy, analyzer, power_model)
        outcome = controller.process_stall(pc=0, bank=0, actual_stall_cycles=200)
        assert outcome.event_energy_j > 0.0

    def test_short_stall_aborts_without_event_energy(self, analyzer, power_model):
        controller = make_controller(NaivePolicy, analyzer, power_model)
        stall = analyzer.drain_cycles - 2
        outcome = controller.process_stall(pc=0, bank=0, actual_stall_cycles=stall)
        assert outcome.aborted
        assert outcome.event_energy_j == 0.0
        assert outcome.intervals == ((PowerState.DRAIN, stall),)
        assert controller.counters.get("aborted") == 1


class TestGatedOracle:
    def test_oracle_never_pays_penalty(self, analyzer, power_model):
        controller = make_controller(OraclePolicy, analyzer, power_model)
        for stall in (150, 300, 1000):
            outcome = controller.process_stall(pc=0, bank=0,
                                               actual_stall_cycles=stall)
            assert outcome.penalty_cycles == 0
            assert outcome.total_cycles == stall

    def test_oracle_skips_unprofitable(self, analyzer, power_model):
        controller = make_controller(OraclePolicy, analyzer, power_model)
        outcome = controller.process_stall(
            pc=0, bank=0, actual_stall_cycles=analyzer.drain_cycles + 2)
        assert not outcome.gated


class TestCounters:
    def test_gate_rate(self, analyzer, power_model):
        controller = make_controller(OraclePolicy, analyzer, power_model)
        controller.process_stall(pc=0, bank=0, actual_stall_cycles=500)
        controller.process_stall(pc=0, bank=0, actual_stall_cycles=5)
        assert controller.gate_rate == pytest.approx(0.5)

    def test_sleep_and_penalty_counters(self, analyzer, power_model):
        controller = make_controller(NaivePolicy, analyzer, power_model)
        controller.process_stall(pc=0, bank=0, actual_stall_cycles=200)
        assert controller.counters.get("sleep_cycles") == 200 - analyzer.drain_cycles
        assert controller.counters.get("penalty_cycles") == analyzer.wake_cycles

    def test_prediction_error_tracked(self, analyzer, power_model):
        controller = make_controller(OraclePolicy, analyzer, power_model)
        controller.process_stall(pc=0, bank=0, actual_stall_cycles=300)
        # Oracle predicts perfectly.
        assert controller.mean_absolute_prediction_error == 0.0


class TestTokenIntegration:
    def test_token_delay_appears_in_outcome(self, analyzer, power_model):
        arbiter = TokenArbiter(TokenConfig(enabled=True, wake_tokens=1))
        first = MapgController(NaivePolicy(analyzer), analyzer, power_model,
                               token_arbiter=arbiter, core_id=0)
        second = MapgController(NaivePolicy(analyzer), analyzer, power_model,
                                token_arbiter=arbiter, core_id=1)
        stall = 200
        # Both stalls trigger wakes at the same cycle; the second must wait
        # for the token held through the first's wake.
        out1 = first.process_stall(pc=0, bank=0, actual_stall_cycles=stall,
                                   start_cycle=0)
        out2 = second.process_stall(pc=0, bank=0, actual_stall_cycles=stall,
                                    start_cycle=0)
        assert out1.penalty_cycles == analyzer.wake_cycles
        assert out2.penalty_cycles == analyzer.wake_cycles * 2
        assert out2.plan.token_wait == analyzer.wake_cycles
        assert second.counters.get("token_delays") == 1

    def test_abort_does_not_request_token(self, analyzer, power_model):
        arbiter = TokenArbiter(TokenConfig(enabled=True, wake_tokens=1))
        controller = MapgController(NaivePolicy(analyzer), analyzer, power_model,
                                    token_arbiter=arbiter)
        controller.process_stall(pc=0, bank=0,
                                 actual_stall_cycles=analyzer.drain_cycles - 1)
        assert arbiter.counters.get("requests") == 0
