"""Tests for the trace-driven core timing model."""

import pytest

from repro.config import CacheConfig, CoreConfig, DramConfig
from repro.cpu.core import BusySegment, Core, StallSegment
from repro.errors import SimulationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.format import ComputeBlock, MemoryAccess


def make_core(issue_width=1, mlp_overlap=0.0):
    config = CoreConfig(issue_width=issue_width, mlp_overlap=mlp_overlap)
    l1 = CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                     associativity=2, hit_latency_cycles=2, mshr_entries=4)
    l2 = CacheConfig(name="L2", size_bytes=4096, line_bytes=64,
                     associativity=4, hit_latency_cycles=10, mshr_entries=4)
    hierarchy = MemoryHierarchy(l1, l2, DramConfig(refresh_latency_ns=0.0),
                                config.frequency_hz)
    return Core(config, hierarchy)


class TestComputeBlocks:
    def test_pure_compute_is_one_busy_segment(self):
        core = make_core()
        segments = list(core.segments([ComputeBlock(100)]))
        assert segments == [BusySegment(100)]
        assert core.counters.get("instructions") == 100

    def test_issue_width_divides_compute_time(self):
        core = make_core(issue_width=4)
        segments = list(core.segments([ComputeBlock(100)]))
        assert segments == [BusySegment(25)]

    def test_issue_width_rounds_up(self):
        core = make_core(issue_width=4)
        segments = list(core.segments([ComputeBlock(10)]))
        assert segments == [BusySegment(3)]

    def test_consecutive_blocks_coalesce(self):
        core = make_core()
        segments = list(core.segments([ComputeBlock(10), ComputeBlock(20)]))
        assert segments == [BusySegment(30)]


class TestMemoryClassification:
    def test_l1_hit_is_pipelined_into_busy(self):
        core = make_core()
        warm = [MemoryAccess(0x1000), ComputeBlock(5), MemoryAccess(0x1000)]
        segments = list(core.segments(warm))
        # miss (stall), then busy covering compute + the hitting access.
        assert isinstance(segments[0], BusySegment)   # the first issue cycle
        assert isinstance(segments[1], StallSegment)
        assert segments[1].off_chip
        assert isinstance(segments[2], BusySegment)
        assert segments[2].cycles == 5 + 1  # compute + pipelined L1 hit

    def test_offchip_stall_reports_pc_and_bank(self):
        core = make_core()
        segments = list(core.segments([MemoryAccess(0x2000, pc=0x400040)]))
        stall = segments[1]
        assert isinstance(stall, StallSegment)
        assert stall.pc == 0x400040
        assert stall.bank >= 0
        assert stall.dram_kind is not None

    def test_onchip_stall_flagged_not_offchip(self):
        core = make_core()
        # Force an L2 hit: fill, evict from L1 via set conflicts, re-access.
        ops = [MemoryAccess(0x0000), MemoryAccess(0x0200),
               MemoryAccess(0x0400), MemoryAccess(0x0000)]
        segments = [s for s in core.segments(ops) if isinstance(s, StallSegment)]
        assert not segments[-1].off_chip
        assert segments[-1].dram_kind is None

    def test_merged_stall_marked(self):
        core = make_core()
        # Two accesses to the same line back-to-back: the core stalls on the
        # first; the second issues one cycle after the stall ends, while the
        # L1 fill's hit-latency tail is still in flight, so it merges into
        # the MSHR entry with a tiny on-chip residual.
        ops = [MemoryAccess(0x3000), MemoryAccess(0x3000)]
        stalls = [s for s in core.segments(ops) if isinstance(s, StallSegment)]
        assert stalls[0].off_chip and not stalls[0].merged
        assert stalls[1].merged and not stalls[1].off_chip
        assert stalls[1].cycles <= 2  # only the fill tail remains

    def test_cycle_counter_advances(self):
        core = make_core()
        list(core.segments([ComputeBlock(10), MemoryAccess(0x1000)]))
        assert core.cycle > 10


class TestMlpOverlap:
    def test_mlp_zero_keeps_full_stalls(self):
        core = make_core(mlp_overlap=0.0)
        ops = [MemoryAccess(0x1000), MemoryAccess(0x9000)]
        stalls = [s for s in core.segments(ops) if isinstance(s, StallSegment)]
        assert len(stalls) == 2

    def test_mlp_overlap_shortens_adjacent_stall(self):
        ops = [MemoryAccess(0x1000), MemoryAccess(0x9000)]
        blocking = make_core(mlp_overlap=0.0)
        overlapped = make_core(mlp_overlap=0.5)
        stalls_blocking = [s.cycles for s in blocking.segments(ops)
                           if isinstance(s, StallSegment)]
        stalls_overlap = [s.cycles for s in overlapped.segments(ops)
                          if isinstance(s, StallSegment)]
        assert stalls_overlap[1] < stalls_blocking[1]

    def test_mlp_gap_too_large_no_overlap(self):
        ops = [MemoryAccess(0x1000), ComputeBlock(100), MemoryAccess(0x9000)]
        overlapped = make_core(mlp_overlap=0.9)
        blocking = make_core(mlp_overlap=0.0)
        stalls_overlap = [s.cycles for s in overlapped.segments(ops)
                          if isinstance(s, StallSegment)]
        stalls_blocking = [s.cycles for s in blocking.segments(ops)
                           if isinstance(s, StallSegment)]
        assert stalls_overlap[-1] == stalls_blocking[-1]


class TestDelays:
    def test_add_delay_advances_clock(self):
        core = make_core()
        list(core.segments([ComputeBlock(10)]))
        before = core.cycle
        core.add_delay(25)
        assert core.cycle == before + 25

    def test_add_negative_delay_rejected(self):
        core = make_core()
        with pytest.raises(SimulationError):
            core.add_delay(-1)

    def test_unknown_op_rejected(self):
        core = make_core()
        with pytest.raises(SimulationError):
            list(core.segments([object()]))
