"""Algebra-vs-event-model cross-check of the wakeup timeline.

Two independent implementations — the closed-form algebra in
``repro.core.wakeup`` and the event-driven model in
``repro.core.crosscheck`` — must agree on every field of the realized
timeline for all inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crosscheck import resolve_by_events
from repro.core.wakeup import resolve_wakeup


@given(
    stall=st.integers(min_value=0, max_value=5000),
    drain=st.integers(min_value=0, max_value=100),
    wake=st.integers(min_value=0, max_value=100),
    offset_slack=st.one_of(st.none(), st.integers(min_value=0, max_value=5000)),
    token_delay=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=300, deadline=None)
def test_event_model_matches_algebra(stall, drain, wake, offset_slack,
                                     token_delay):
    offset = None if offset_slack is None else drain + offset_slack
    algebraic = resolve_wakeup(stall, drain, wake, offset, token_delay)
    event_driven = resolve_by_events(stall, drain, wake, offset, token_delay)
    assert event_driven == algebraic


@given(
    stall=st.integers(min_value=0, max_value=2000),
    drain=st.integers(min_value=0, max_value=60),
    wake=st.integers(min_value=0, max_value=60),
)
def test_naive_case_matches(stall, drain, wake):
    assert resolve_by_events(stall, drain, wake, None) == \
        resolve_wakeup(stall, drain, wake, None)


def test_exact_prediction_case():
    stall, drain, wake = 200, 14, 17
    plan = resolve_by_events(stall, drain, wake, stall - wake)
    assert plan.penalty == 0
    assert plan.idle_awake == 0
    assert plan.total == stall
