"""Documentation executable-ness: README code must actually run.

Extracts every fenced python block from README.md and executes it; a
drifting API breaks this test before it breaks a user.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"


def python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_readme_has_python_examples():
    assert len(python_blocks()) >= 1


@pytest.mark.parametrize("index,block", list(enumerate(python_blocks())))
def test_readme_python_blocks_execute(index, block):
    # Shrink any num_ops literals so the doc snippet runs fast under test.
    fast = re.sub(r"num_ops=\d[\d_]*", "num_ops=2_000", block)
    namespace: dict = {}
    exec(compile(fast, f"README.md#block{index}", "exec"), namespace)


def test_readme_mentions_every_top_level_doc():
    text = README.read_text(encoding="utf-8")
    for doc in ("DESIGN.md", "EXPERIMENTS.md"):
        assert doc in text


def test_linting_md_documents_every_rule():
    """docs/LINTING.md has a section per rule id, in sync with --explain.

    The explain table is pinned complete-by-registry elsewhere; this pin
    keeps the prose document from drifting behind the registry — a rule
    that CI enforces but the docs never mention is unreviewable.
    """
    from repro.lint import all_rule_ids

    text = (Path(__file__).parent.parent / "docs" / "LINTING.md") \
        .read_text(encoding="utf-8")
    headings = set(re.findall(r"^### ([A-Z]+\d+) ", text, re.M))
    missing = [rule for rule in all_rule_ids() if rule not in headings]
    assert not missing, f"rules undocumented in docs/LINTING.md: {missing}"


def test_linting_md_documents_the_pragmas():
    text = (Path(__file__).parent.parent / "docs" / "LINTING.md") \
        .read_text(encoding="utf-8")
    for pragma in ("mapglint: disable=", "mapglint: declared-cache",
                   "mapglint: guarded-by=", "mapglint: error-boundary"):
        assert pragma in text, f"pragma '{pragma}' undocumented"


def test_experiment_ids_in_experiments_md_resolve_to_results():
    """Every ledger row's id has an archived result (after a bench run)."""
    results_dir = Path(__file__).parent.parent / "benchmarks" / "results"
    if not results_dir.exists():
        pytest.skip("benchmarks not yet run in this checkout")
    ledger = (Path(__file__).parent.parent / "EXPERIMENTS.md").read_text()
    ids = set(re.findall(r"^\| (T\d+|F\d+) \|", ledger, re.M))
    missing = [i for i in sorted(ids)
               if not (results_dir / f"{i.lower()}.txt").exists()]
    assert not missing, f"ledger rows without archived results: {missing}"
