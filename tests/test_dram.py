"""Tests for the DRAM timing model."""

import pytest

from repro.config import DramConfig
from repro.memory.dram import ROW_CLOSED, ROW_CONFLICT, ROW_HIT, Dram


def quiet_config(**kwargs):
    """A config with queue/refresh effects off unless a test wants them."""
    defaults = dict(refresh_latency_ns=0.0)
    defaults.update(kwargs)
    return DramConfig(**defaults)


def fixed_latency(config, kind):
    """Analytic expected latency for an uncontended access of ``kind``."""
    base = (config.controller_overhead_ns + config.queue_service_ns
            + config.bus_transfer_ns)
    if kind == ROW_HIT:
        return base + config.t_cas_ns
    if kind == ROW_CLOSED:
        return base + config.t_rcd_ns + config.t_cas_ns
    return base + config.t_rp_ns + config.t_rcd_ns + config.t_cas_ns


class TestRowBuffer:
    def test_first_access_is_row_closed(self):
        dram = Dram(quiet_config())
        result = dram.access(0x0, now_ns=0.0)
        assert result.kind == ROW_CLOSED
        assert result.latency_ns == pytest.approx(
            fixed_latency(dram.config, ROW_CLOSED))

    def test_second_access_same_row_is_hit(self):
        dram = Dram(quiet_config())
        dram.access(0x0, now_ns=0.0)
        result = dram.access(0x40, now_ns=1000.0)
        assert result.kind == ROW_HIT
        assert result.latency_ns == pytest.approx(
            fixed_latency(dram.config, ROW_HIT))

    def test_different_row_same_bank_conflicts(self):
        config = quiet_config()
        dram = Dram(config)
        row_span = config.row_bytes * config.total_banks
        dram.access(0x0, now_ns=0.0)
        # Far enough in time that tRAS has elapsed; same bank, next row.
        result = dram.access(row_span, now_ns=1000.0)
        assert result.kind == ROW_CONFLICT
        assert result.latency_ns == pytest.approx(
            fixed_latency(config, ROW_CONFLICT))

    def test_conflict_respects_tras(self):
        config = quiet_config()
        dram = Dram(config)
        row_span = config.row_bytes * config.total_banks
        dram.access(0x0, now_ns=0.0)
        # Immediately conflict: precharge must wait for tRAS since activate.
        early = dram.access(row_span, now_ns=0.0)
        late_dram = Dram(config)
        late_dram.access(0x0, now_ns=0.0)
        late = late_dram.access(row_span, now_ns=10_000.0)
        assert early.latency_ns > late.latency_ns

    def test_closed_page_policy_never_row_hits(self):
        dram = Dram(quiet_config(row_policy="closed"))
        dram.access(0x0, now_ns=0.0)
        result = dram.access(0x40, now_ns=1000.0)
        assert result.kind == ROW_CLOSED

    def test_hit_faster_than_closed_faster_than_conflict(self):
        config = quiet_config()
        hit = fixed_latency(config, ROW_HIT)
        closed = fixed_latency(config, ROW_CLOSED)
        conflict = fixed_latency(config, ROW_CONFLICT)
        assert hit < closed < conflict


class TestBankMapping:
    def test_rows_interleave_across_banks(self):
        config = quiet_config()
        dram = Dram(config)
        banks = {dram.map_address(i * config.row_bytes)[0]
                 for i in range(config.total_banks)}
        assert len(banks) == config.total_banks

    def test_same_row_same_bank(self):
        dram = Dram(quiet_config())
        assert dram.map_address(0x0) == dram.map_address(0x100)

    def test_different_banks_do_not_queue(self):
        config = quiet_config()
        dram = Dram(config)
        dram.access(0x0, now_ns=0.0)
        other_bank = config.row_bytes  # next row -> different bank
        result = dram.access(other_bank, now_ns=0.0)
        assert result.queue_wait_ns == 0.0


class TestQueueing:
    def test_back_to_back_same_bank_waits(self):
        dram = Dram(quiet_config())
        first = dram.access(0x0, now_ns=0.0)
        second = dram.access(0x40, now_ns=0.0)
        assert second.queue_wait_ns > 0.0
        assert second.latency_ns > first.latency_ns - dram.config.t_rcd_ns

    def test_spaced_accesses_do_not_wait(self):
        dram = Dram(quiet_config())
        dram.access(0x0, now_ns=0.0)
        result = dram.access(0x40, now_ns=10_000.0)
        assert result.queue_wait_ns == 0.0


class TestRefresh:
    def test_refresh_collision_adds_wait(self):
        config = quiet_config(refresh_latency_ns=100.0,
                              refresh_interval_ns=1000.0)
        dram = Dram(config)
        # Arrival right at the start of the refresh window: phase ~ 0.
        result = dram.access(0x0, now_ns=1000.0 - config.controller_overhead_ns)
        assert result.refresh_wait_ns > 0.0

    def test_access_outside_window_unaffected(self):
        config = quiet_config(refresh_latency_ns=100.0,
                              refresh_interval_ns=1000.0)
        dram = Dram(config)
        result = dram.access(0x0, now_ns=500.0 - config.controller_overhead_ns)
        assert result.refresh_wait_ns == 0.0

    def test_refresh_disabled_by_default(self):
        dram = Dram(quiet_config())
        result = dram.access(0x0, now_ns=0.0)
        assert result.refresh_wait_ns == 0.0


class TestStatistics:
    def test_row_hit_rate(self):
        dram = Dram(quiet_config())
        dram.access(0x0, now_ns=0.0)
        dram.access(0x40, now_ns=1000.0)
        dram.access(0x80, now_ns=2000.0)
        assert dram.row_hit_rate == pytest.approx(2 / 3)

    def test_write_counter(self):
        dram = Dram(quiet_config())
        dram.access(0x0, now_ns=0.0, is_write=True)
        dram.access(0x40, now_ns=100.0, is_write=False)
        assert dram.counters.get("writes") == 1
        assert dram.counters.get("accesses") == 2

    def test_reset_state_precharges(self):
        dram = Dram(quiet_config())
        dram.access(0x0, now_ns=0.0)
        dram.reset_state()
        result = dram.access(0x40, now_ns=10_000.0)
        assert result.kind == ROW_CLOSED

    def test_latency_histogram_populated(self):
        dram = Dram(quiet_config())
        dram.access(0x0, now_ns=0.0)
        assert dram.latency_histogram.count == 1


class TestWriteBuffer:
    def test_buffered_write_returns_immediately(self):
        dram = Dram(quiet_config(write_buffer_per_bank=4))
        result = dram.access(0x0, now_ns=0.0, is_write=True)
        assert result.kind == "write_buffered"
        # Buffer accept costs only the controller path, not the array access.
        assert result.latency_ns < fixed_latency(dram.config, ROW_CLOSED) / 2

    def test_buffered_write_does_not_block_spaced_read(self):
        """With an idle gap, the debt drains before the read arrives."""
        buffered = Dram(quiet_config(write_buffer_per_bank=4))
        unbuffered = Dram(quiet_config(write_buffer_per_bank=0))
        for dram in (buffered, unbuffered):
            dram.access(0x0, now_ns=0.0, is_write=True)
        read_b = buffered.access(0x40, now_ns=500.0)
        read_u = unbuffered.access(0x40, now_ns=500.0)
        assert read_b.queue_wait_ns == 0.0
        assert read_u.queue_wait_ns == 0.0  # gap drained either way

    def test_immediate_read_behind_write_is_faster_with_buffer(self):
        buffered = Dram(quiet_config(write_buffer_per_bank=4))
        unbuffered = Dram(quiet_config(write_buffer_per_bank=0))
        for dram in (buffered, unbuffered):
            dram.access(0x0, now_ns=0.0, is_write=True)
        lat_b = buffered.access(0x40, now_ns=0.0).latency_ns
        lat_u = unbuffered.access(0x40, now_ns=0.0).latency_ns
        assert lat_b < lat_u

    def test_overflow_forces_burst_drain(self):
        config = quiet_config(write_buffer_per_bank=2)
        dram = Dram(config)
        for i in range(4):  # same bank, no idle gaps
            dram.access(0x40 * i, now_ns=0.0, is_write=True)
        assert dram.counters.get("write_buffer_drains") >= 1
        # A read right after the burst pays for the drained writes.
        read = dram.access(0x1000, now_ns=0.0)
        assert read.queue_wait_ns > 0.0

    def test_debt_drains_during_idle_gaps(self):
        config = quiet_config(write_buffer_per_bank=8)
        dram = Dram(config)
        for __ in range(4):
            dram.access(0x0, now_ns=0.0, is_write=True)
        # A far-future read sees a fully drained bank.
        read = dram.access(0x40, now_ns=100_000.0)
        assert read.queue_wait_ns == 0.0

    def test_zero_buffer_reverts_to_blocking_writes(self):
        dram = Dram(quiet_config(write_buffer_per_bank=0))
        result = dram.access(0x0, now_ns=0.0, is_write=True)
        assert result.kind == ROW_CLOSED
        assert dram.counters.get("buffered_writes") == 0


class TestScaling:
    def test_scaled_config_scales_latency(self):
        base = Dram(quiet_config())
        fast = Dram(quiet_config().scaled(0.5))
        slow = Dram(quiet_config().scaled(2.0))
        lat_base = base.access(0x0, now_ns=0.0).latency_ns
        lat_fast = fast.access(0x0, now_ns=0.0).latency_ns
        lat_slow = slow.access(0x0, now_ns=0.0).latency_ns
        assert lat_fast == pytest.approx(0.5 * lat_base)
        assert lat_slow == pytest.approx(2.0 * lat_base)
