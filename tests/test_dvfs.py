"""Tests for the memory-aware DVFS evaluation model."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.power.dvfs import DvfsModel, sweep
from repro.sim.runner import run_workload, with_policy
from repro.sim.simulator import Simulator
from repro.units import cycles_to_seconds


@pytest.fixture(scope="module")
def never_run():
    return run_workload(with_policy(SystemConfig(), "never"),
                        "mcf_like", 3000, seed=9)


@pytest.fixture(scope="module")
def mapg_run():
    return run_workload(with_policy(SystemConfig(), "mapg"),
                        "mcf_like", 3000, seed=9)


@pytest.fixture(scope="module")
def model():
    simulator = Simulator(with_policy(SystemConfig(), "never"))
    return DvfsModel(simulator.power_model)


class TestIdentityPoint:
    def test_r1_reproduces_simulated_energy(self, model, never_run):
        point = model.evaluate(never_run, 1.0)
        assert point.energy_j == pytest.approx(never_run.energy_j, rel=1e-9)

    def test_r1_reproduces_simulated_time(self, model, never_run):
        point = model.evaluate(never_run, 1.0)
        expected = cycles_to_seconds(never_run.total_cycles,
                                     model.power_model.circuit.frequency_hz)
        assert point.time_s == pytest.approx(expected, rel=1e-9)

    def test_r1_on_gated_run_too(self, model, mapg_run):
        point = model.evaluate(mapg_run, 1.0)
        assert point.energy_j == pytest.approx(mapg_run.energy_j, rel=1e-9)


class TestScalingShape:
    def test_lower_frequency_longer_runtime(self, model, never_run):
        times = [model.evaluate(never_run, r).time_s for r in (1.0, 0.7, 0.5)]
        assert times == sorted(times)

    def test_memory_bound_runtime_stretch_is_sublinear(self, model, never_run):
        """A 2x slowdown in clock must stretch an mcf-like run far less
        than 2x — most of its wall clock is memory time."""
        base = model.evaluate(never_run, 1.0)
        half = model.evaluate(never_run, 0.5)
        assert half.time_s < 1.3 * base.time_s

    def test_dvfs_saves_core_energy_on_memory_bound(self, model, never_run):
        base = model.evaluate(never_run, 1.0)
        slow = model.evaluate(never_run, 0.6)
        assert slow.energy_j < base.energy_j

    def test_voltage_floor_respected(self, model):
        assert model.relative_voltage(1.0) == pytest.approx(1.0)
        assert model.relative_voltage(0.01) == pytest.approx(
            model.voltage_floor, abs=0.01)

    def test_combined_beats_either_alone(self, model, never_run, mapg_run):
        """MAPG (leakage) + DVFS (dynamic) stack on a memory-bound run."""
        dvfs_only = model.evaluate(never_run, 0.6).energy_j
        mapg_only = model.evaluate(mapg_run, 1.0).energy_j
        combined = model.evaluate(mapg_run, 0.6).energy_j
        assert combined < dvfs_only
        assert combined < mapg_only


class TestValidation:
    def test_rejects_out_of_range_frequency(self, model, never_run):
        with pytest.raises(ConfigError):
            model.evaluate(never_run, 0.0)
        with pytest.raises(ConfigError):
            model.evaluate(never_run, 1.5)

    def test_rejects_bad_floor(self):
        simulator = Simulator(with_policy(SystemConfig(), "never"))
        with pytest.raises(ConfigError):
            DvfsModel(simulator.power_model, voltage_floor=0.0)

    def test_sweep_returns_point_per_frequency(self, model, never_run):
        points = sweep(model, never_run, [1.0, 0.8, 0.6])
        assert [p.relative_frequency for p in points] == [1.0, 0.8, 0.6]
        assert all(p.edp() > 0 for p in points)
