"""Cross-module edge cases and failure injection.

These tests target the seams between modules: degenerate traces, extreme
configurations, mid-run state corruption, and boundary conditions that no
single module's unit tests cover.
"""

import pytest

from repro.config import CacheConfig, CoreConfig, GatingConfig, SystemConfig
from repro.errors import SimulationError
from repro.sim.runner import run_workload, with_policy
from repro.sim.simulator import Simulator
from repro.trace.format import ComputeBlock, MemoryAccess
from repro.workloads import generate_trace


def make_simulator(policy="mapg", **config_kwargs):
    return Simulator(SystemConfig(gating=GatingConfig(policy=policy),
                                  **config_kwargs))


class TestDegenerateTraces:
    def test_empty_trace(self):
        result = make_simulator().run([])
        assert result.total_cycles == 0
        assert result.energy_j == 0.0
        assert result.ipc == 0.0

    def test_single_compute_instruction(self):
        result = make_simulator().run([ComputeBlock(1)])
        assert result.total_cycles == 1
        assert result.instructions == 1

    def test_single_memory_access(self):
        result = make_simulator().run([MemoryAccess(0x0)])
        assert result.offchip_stalls == 1
        assert result.total_cycles > 100

    def test_all_accesses_same_line(self):
        """One miss then pure L1 hits: exactly one off-chip stall."""
        ops = [MemoryAccess(0x100)] + [ComputeBlock(10), MemoryAccess(0x100)] * 20
        result = make_simulator().run(ops)
        assert result.offchip_stalls == 1

    def test_huge_addresses(self):
        ops = [MemoryAccess((1 << 47) + 64 * i) for i in range(10)]
        result = make_simulator().run(ops)
        assert result.offchip_stalls >= 1

    def test_write_only_trace(self):
        ops = [MemoryAccess(0x1000 * i, is_write=True) for i in range(20)]
        result = make_simulator().run(ops)
        assert result.total_cycles > 0


class TestExtremeConfigurations:
    def test_wide_issue_core(self):
        config = SystemConfig(core=CoreConfig(issue_width=8))
        simulator = Simulator(config)
        result = simulator.run([ComputeBlock(800)])
        assert result.total_cycles == 100

    def test_full_mlp_overlap(self):
        config = SystemConfig(core=CoreConfig(mlp_overlap=1.0))
        simulator = Simulator(config)
        result = simulator.run([MemoryAccess(0x0), MemoryAccess(0x100000)])
        # Second stall collapses to the 1-cycle floor.
        assert result.offchip_stalls == 2

    def test_closed_page_dram_end_to_end(self):
        import dataclasses
        base = SystemConfig()
        config = base.replace(dram=dataclasses.replace(base.dram,
                                                       row_policy="closed"))
        result = Simulator(config).run(generate_trace("gcc_like", 500, seed=1))
        assert result.memory_counters.get("dram_row_hit", 0) == 0

    def test_tiny_caches_still_consistent(self):
        config = SystemConfig(
            l1=CacheConfig(name="L1D", size_bytes=128, line_bytes=64,
                           associativity=1, hit_latency_cycles=1, mshr_entries=1),
            l2=CacheConfig(name="L2", size_bytes=256, line_bytes=64,
                           associativity=2, hit_latency_cycles=4, mshr_entries=1))
        simulator = Simulator(config)
        result = simulator.run(generate_trace("gcc_like", 800, seed=1))
        assert sum(result.state_cycles.values()) == result.total_cycles

    def test_one_entry_mshr_serializes(self):
        config = SystemConfig(
            l1=CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                           associativity=2, hit_latency_cycles=2, mshr_entries=1),
            l2=CacheConfig(name="L2", size_bytes=4096, line_bytes=64,
                           associativity=4, hit_latency_cycles=10, mshr_entries=1))
        result = Simulator(config).run(generate_trace("mcf_like", 500, seed=1))
        assert result.total_cycles > 0

    @pytest.mark.parametrize("replacement", ["plru", "random"])
    def test_alternate_replacement_end_to_end(self, replacement):
        base = SystemConfig()
        import dataclasses
        config = base.replace(
            l1=dataclasses.replace(base.l1, replacement=replacement),
            l2=dataclasses.replace(base.l2, replacement=replacement))
        result = Simulator(config).run(generate_trace("gcc_like", 500, seed=1))
        assert sum(result.state_cycles.values()) == result.total_cycles

    @pytest.mark.parametrize("technology", ["90nm", "65nm", "45nm", "32nm"])
    def test_every_node_end_to_end(self, technology):
        config = SystemConfig(technology=technology)
        result = Simulator(config).run(generate_trace("mcf_like", 300, seed=1))
        assert result.energy_j > 0.0


class TestFailureInjection:
    def test_cache_invalidation_mid_run_stays_consistent(self):
        """Dropping lines behind the simulator's back must not corrupt
        accounting — only change hit rates."""
        simulator = make_simulator()
        trace = generate_trace("gcc_like", 400, seed=1)
        segments = simulator.core.segments(trace)
        for index, segment in enumerate(segments):
            simulator.handle_segment(segment)
            if index == 20:
                simulator.hierarchy.l1.flush()
                simulator.hierarchy.l2.flush()
        result = simulator.result()
        assert sum(result.state_cycles.values()) == result.total_cycles

    def test_negative_stall_rejected_at_controller(self):
        simulator = make_simulator()
        with pytest.raises(SimulationError):
            simulator.controller.process_stall(pc=0, bank=0,
                                               actual_stall_cycles=-5)

    def test_result_before_any_segment(self):
        simulator = make_simulator()
        result = simulator.result()
        assert result.total_cycles == 0

    def test_dram_reset_mid_run_only_affects_timing(self):
        simulator = make_simulator()
        trace = generate_trace("mcf_like", 300, seed=1)
        for index, segment in enumerate(simulator.core.segments(trace)):
            simulator.handle_segment(segment)
            if index == 10:
                simulator.hierarchy.dram.reset_state()
        result = simulator.result()
        assert sum(result.state_cycles.values()) == result.total_cycles


class TestDeterminismAcrossPolicies:
    def test_policy_does_not_perturb_memory_behaviour(self):
        """Gating penalties shift timing, but demand misses are identical
        (same trace, same caches) across policies."""
        results = {}
        for policy in ("never", "naive", "mapg"):
            config = with_policy(SystemConfig(), policy)
            results[policy] = run_workload(config, "gcc_like", 1000, seed=5)
        misses = {p: r.memory_counters.get("l2_misses", 0)
                  for p, r in results.items()}
        assert len(set(misses.values())) == 1
