"""Tests for the energy ledger."""

import pytest

from repro.core.energy import EnergyLedger
from repro.errors import SimulationError
from repro.power.model import PowerState


class TestIntervals:
    def test_interval_energy_matches_power_model(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_interval(PowerState.ACTIVE, 1000)
        expected = power_model.interval_energy_j(PowerState.ACTIVE, 1000)
        assert ledger.energy_in_j(PowerState.ACTIVE) == pytest.approx(expected)

    def test_total_cycles_sums_states(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_interval(PowerState.ACTIVE, 100)
        ledger.add_interval(PowerState.SLEEP, 50)
        assert ledger.total_cycles == 150

    def test_zero_cycles_noop(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_interval(PowerState.ACTIVE, 0)
        assert ledger.total_cycles == 0

    def test_negative_cycles_rejected(self, power_model):
        ledger = EnergyLedger(power_model)
        with pytest.raises(SimulationError):
            ledger.add_interval(PowerState.ACTIVE, -1)

    def test_sleep_cheaper_than_stall(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_interval(PowerState.STALL, 1000)
        ledger.add_interval(PowerState.SLEEP, 1000)
        assert ledger.energy_in_j(PowerState.SLEEP) < \
            0.05 * ledger.energy_in_j(PowerState.STALL)


class TestEvents:
    def test_event_energy_accumulates(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_event(1e-9)
        ledger.add_event(2e-9)
        assert ledger.event_energy_j == pytest.approx(3e-9)
        assert ledger.event_count == 2

    def test_negative_event_rejected(self, power_model):
        ledger = EnergyLedger(power_model)
        with pytest.raises(SimulationError):
            ledger.add_event(-1e-9)


class TestBackground:
    def test_background_scales_with_total_time(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_interval(PowerState.SLEEP, 2_000_000)
        seconds = 2_000_000 / power_model.circuit.frequency_hz
        assert ledger.background_energy_j == pytest.approx(
            power_model.background_power_w * seconds)

    def test_total_includes_background_and_events(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_interval(PowerState.ACTIVE, 1000)
        ledger.add_event(5e-9)
        expected = (ledger.energy_in_j(PowerState.ACTIVE)
                    + ledger.background_energy_j + 5e-9)
        assert ledger.total_energy_j == pytest.approx(expected)

    def test_state_energy_report_includes_background(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_interval(PowerState.ACTIVE, 10)
        assert "background" in ledger.state_energy()


class TestMerge:
    def test_merge_sums_everything(self, power_model):
        a, b = EnergyLedger(power_model), EnergyLedger(power_model)
        a.add_interval(PowerState.ACTIVE, 100)
        b.add_interval(PowerState.ACTIVE, 50)
        b.add_interval(PowerState.SLEEP, 30)
        b.add_event(1e-9)
        a.merge(b)
        assert a.cycles_in(PowerState.ACTIVE) == 150
        assert a.cycles_in(PowerState.SLEEP) == 30
        assert a.event_count == 1

    def test_state_cycles_report_omits_empty_states(self, power_model):
        ledger = EnergyLedger(power_model)
        ledger.add_interval(PowerState.ACTIVE, 10)
        assert set(ledger.state_cycles()) == {"active"}
