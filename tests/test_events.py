"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.events import EventQueue


class TestScheduling:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(30, fired.append, "c")
        queue.schedule(10, fired.append, "a")
        queue.schedule(20, fired.append, "b")
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for tag in ("first", "second", "third"):
            queue.schedule(5, fired.append, tag)
        queue.run()
        assert fired == ["first", "second", "third"]

    def test_now_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(42, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [42]
        assert queue.now == 42

    def test_schedule_at_absolute_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(100, fired.append, "x")
        queue.run()
        assert fired == ["x"]
        assert queue.now == 100

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule_at(5, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        queue = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                queue.schedule(10, chain, n + 1)

        queue.schedule(0, chain, 0)
        queue.run()
        assert fired == [0, 1, 2, 3]
        assert queue.now == 30


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(10, fired.append, "no")
        queue.schedule(20, fired.append, "yes")
        handle.cancel()
        queue.run()
        assert fired == ["yes"]

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert queue.run() == 0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        handle.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 20


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10, fired.append, "early")
        queue.schedule(30, fired.append, "late")
        queue.run_until(20)
        assert fired == ["early"]
        assert queue.now == 20

    def test_run_until_inclusive(self):
        queue = EventQueue()
        fired = []
        queue.schedule(20, fired.append, "at")
        queue.run_until(20)
        assert fired == ["at"]

    def test_advance_moves_clock_even_without_events(self):
        queue = EventQueue()
        queue.advance(15)
        assert queue.now == 15

    def test_advance_negative_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.advance(-1)


class TestRunawayGuard:
    def test_self_rescheduling_loop_detected(self):
        queue = EventQueue()

        def rearm():
            queue.schedule(1, rearm)

        queue.schedule(0, rearm)
        with pytest.raises(SimulationError):
            queue.run(max_events=100)

    def test_run_returns_event_count(self):
        queue = EventQueue()
        for delay in range(5):
            queue.schedule(delay, lambda: None)
        assert queue.run() == 5
