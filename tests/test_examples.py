"""Smoke tests: every example must run to completion and print its story.

Run in-process (runpy) with controlled argv so failures produce real
tracebacks; sizes are kept small through the examples' own CLI arguments
where they have them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(script, argv, capsys):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / script)] + argv
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "energy saving" in out
    assert "where the cycles went" in out


def test_policy_comparison(capsys):
    out = run_example("policy_comparison.py", ["1500"], capsys)
    assert "mapg" in out and "oracle" in out
    assert "EDP ratio" in out


def test_breakeven_explorer(capsys):
    out = run_example("breakeven_explorer.py", ["32nm", "110"], capsys)
    assert "break-even time" in out
    assert "WORTH GATING" in out


def test_latency_prediction(capsys):
    out = run_example("latency_prediction.py", ["gcc_like"], capsys)
    assert "prediction accuracy" in out
    assert "table" in out


def test_multicore_tokens(capsys):
    out = run_example("multicore_tokens.py", [], capsys)
    assert "wake tokens" in out
    assert "deferred" in out


def test_gating_timeline(capsys):
    out = run_example("gating_timeline.py", ["gcc_like", "mapg"], capsys)
    assert "legend" in out
    assert "cycle budget by power state" in out


def test_rush_waveform(capsys):
    out = run_example("rush_waveform.py", ["45nm", "1"], capsys)
    assert "closed-loop staggered wake" in out
    assert "X" not in out.splitlines()[-2]  # legal stagger: no violations


def test_custom_workload(capsys):
    out = run_example("custom_workload.py", [], capsys)
    assert "database_like" in out
    assert "database_mix" in out


def test_dvfs_comparison(capsys):
    out = run_example("dvfs_comparison.py", ["gcc_like"], capsys)
    assert "MAPG alone" in out
    assert "DVFS saving" in out
