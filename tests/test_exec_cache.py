"""Tests for the content-addressed result cache.

The contract under test: a hit is field-for-field identical to a fresh
run, and *anything* that could change the result — any config field, the
seed, or any simulation source file — must change the key and miss.
"""

import dataclasses
import json
import os

import repro.exec.cache as cache_module
from repro.config import SystemConfig
from repro.exec import JobSpec, ResultCache, result_from_dict, result_to_dict
from repro.sim.runner import with_policy


def make_spec(**overrides):
    base = dict(config=with_policy(SystemConfig(), "mapg"),
                profile="gcc_like", num_ops=400, seed=3)
    base.update(overrides)
    return JobSpec(**base)


class TestRoundTrip:
    def test_hit_is_field_for_field_equal(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = make_spec()
        fresh = cell.execute()
        cache.store(cell, fresh)
        cached = cache.load(cell)
        assert cached == fresh  # dataclass equality covers every field
        for field in dataclasses.fields(fresh):
            assert getattr(cached, field.name) == getattr(fresh, field.name)

    def test_floats_round_trip_exactly(self):
        cell = make_spec()
        result = cell.execute()
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result))))
        assert rebuilt.energy_j == result.energy_j
        assert rebuilt == result

    def test_result_from_dict_rejects_unknown_fields(self):
        data = result_to_dict(make_spec().execute())
        data["bogus_field"] = 1
        try:
            result_from_dict(data)
        except ValueError as error:
            assert "bogus_field" in str(error)
        else:
            raise AssertionError("unknown field accepted")


class TestKeyCorrectness:
    def test_config_field_change_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = make_spec()
        cache.store(cell, cell.execute())
        config = cell.config
        edited = [
            make_spec(config=with_policy(config, "naive")),
            make_spec(config=config.replace(dram=config.dram.scaled(1.5))),
            make_spec(config=config.replace(
                gating=dataclasses.replace(config.gating, bet_scale=2.0))),
        ]
        for variant in edited:
            assert cache.load(variant) is None
        assert cache.load(cell) is not None

    def test_seed_and_ops_changes_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = make_spec()
        cache.store(cell, cell.execute())
        assert cache.load(make_spec(seed=4)) is None
        assert cache.load(make_spec(num_ops=401)) is None
        assert cache.load(make_spec(warmup_ops=10)) is None

    def test_simulation_source_change_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = make_spec()
        cache.store(cell, cell.execute())
        assert cache.load(cell) is not None
        # Simulate an edit to any model file: the process-wide source
        # digest changes, so every existing entry must miss.
        monkeypatch.setattr(cache_module, "simulation_version",
                            lambda: "0" * 20)
        assert cache.load(cell) is None


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = make_spec()
        cache.store(cell, cell.execute())
        entry_path = cache._entry_path(cache.key(cell))
        with open(entry_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.load(cell) is None

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = make_spec()
        cache.store(cell, cell.execute())
        entry_path = cache._entry_path(cache.key(cell))
        with open(entry_path, encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["schema"] = "mapg.sim-result/0"
        with open(entry_path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.load(cell) is None

    def test_cache_dir_gitignores_itself(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ResultCache(str(cache_dir))
        cell = make_spec(num_ops=50)
        cache.store(cell, cell.execute())
        marker = cache_dir / ".gitignore"
        assert marker.read_text() == "*\n"

    def test_no_leftover_temp_files(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ResultCache(str(cache_dir))
        cell = make_spec(num_ops=50)
        cache.store(cell, cell.execute())
        leftovers = [name for __, __, names in os.walk(str(cache_dir))
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []

    def test_stats_track_hits_and_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = make_spec(num_ops=50)
        assert cache.load(cell) is None
        cache.store(cell, cell.execute())
        assert cache.load(cell) is not None
        assert cache.stats() == {"hits": 1, "misses": 1}
