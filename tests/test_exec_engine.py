"""Tests for the parallel sweep engine: invariance, dedupe, memoization.

The load-bearing property is **worker-count invariance**: a sweep's
output must be byte-identical (as a sorted-key JSON dump) at any
``jobs`` setting, cold or warm cache.  The pool tests use tiny traces —
they exercise plumbing, not throughput.
"""

import json

import pytest

import repro.exec.tracestore as tracestore_module
from repro.config import SystemConfig
from repro.errors import ConfigError, ReproError, SweepError
from repro.exec import JobSpec, ResultCache, SweepRunner, result_to_dict
from repro.obs import SelfProfiler
from repro.sim.runner import (
    run_policy_comparison,
    run_seed_study,
    run_workload,
    with_policy,
)
from repro.sim.simulator import Simulator
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticTraceGenerator


def canonical_bytes(value):
    """Sorted-key JSON of any nest of dicts/lists/SimulationResults."""
    def encode(obj):
        if hasattr(obj, "workload") and hasattr(obj, "energy_j"):
            return result_to_dict(obj)
        raise TypeError(f"not JSON-ready: {type(obj).__name__}")
    return json.dumps(value, sort_keys=True, default=encode,
                      separators=(",", ":")).encode("utf-8")


def tiny_specs(num_ops=250):
    config = SystemConfig()
    return [JobSpec(config=with_policy(config, policy), profile=profile,
                    num_ops=num_ops, seed=3)
            for profile in ("gcc_like", "mcf_like")
            for policy in ("never", "mapg")]


class TestSweepRunner:
    def test_results_in_input_order(self):
        specs = tiny_specs()
        results = SweepRunner().run(specs)
        assert [(r.workload, r.policy) for r in results] \
            == [(s.profile, s.config.gating.policy) for s in specs]

    def test_duplicates_simulated_once(self):
        specs = tiny_specs()
        runner = SweepRunner()
        results = runner.run(specs + specs)
        assert len(results) == 2 * len(specs)
        assert runner.executed == len(specs)
        assert results[: len(specs)] == results[len(specs):]

    def test_matches_direct_run_workload(self):
        spec = tiny_specs()[1]
        assert SweepRunner().run([spec])[0] == run_workload(
            spec.config, spec.profile, spec.num_ops, seed=spec.seed)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigError):
            SweepRunner(jobs=0)

    def test_runner_rejects_foreign_cache(self):
        with pytest.raises(ConfigError):
            run_policy_comparison(SystemConfig(), ["gcc_like"], ["never"],
                                  100, cache=object())

    def test_cache_hit_skips_execution(self, tmp_path):
        specs = tiny_specs(num_ops=150)
        cold = SweepRunner(cache=ResultCache(str(tmp_path)))
        first = cold.run(specs)
        warm = SweepRunner(cache=ResultCache(str(tmp_path)))
        second = warm.run(specs)
        assert warm.executed == 0
        assert warm.cache_hits == len(specs)
        assert canonical_bytes(first) == canonical_bytes(second)


class TestGracefulDegradation:
    """A failing cell may not take the sweep down with it (ERR01 fix).

    The poison passes ``JobSpec.__post_init__`` (any non-empty profile
    name does) and fails only inside ``execute`` when ``get_profile``
    rejects the unknown name — exactly the late-failure shape a pool
    worker used to re-raise at the join, discarding every in-flight
    cell.
    """

    def _specs_with_poison(self, total=20, num_ops=100):
        config = SystemConfig()
        specs = [JobSpec(config=with_policy(config, policy),
                         profile="gcc_like", num_ops=num_ops, seed=seed)
                 for policy in ("never", "mapg")
                 for seed in range(total // 2)]
        poison = JobSpec(config=config, profile="no_such_profile",
                         num_ops=num_ops, seed=3)
        return specs[: total - 1] + [poison], poison

    def test_poisoned_cell_leaves_nineteen_in_the_cache(self, tmp_path):
        specs, poison = self._specs_with_poison()
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(cache=cache)
        with pytest.raises(SweepError) as excinfo:
            runner.run(specs)
        # The aggregate failure names the poisoned cell by its spec key.
        assert poison.key in str(excinfo.value)
        assert excinfo.value.failures.keys() == {poison.key}
        assert isinstance(excinfo.value, ReproError)

        # Every healthy cell completed and landed in the cache: a rerun
        # without the poison is served entirely from disk.
        warm = SweepRunner(cache=ResultCache(str(tmp_path)))
        results = warm.run(specs[:-1])
        assert warm.executed == 0
        assert warm.cache_hits == 19
        assert len(results) == 19

    def test_pool_path_degrades_identically(self, tmp_path):
        specs, poison = self._specs_with_poison(total=4)
        cache = ResultCache(str(tmp_path))
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(jobs=4, cache=cache).run(specs)
        assert poison.key in str(excinfo.value)

        warm = SweepRunner(cache=ResultCache(str(tmp_path)))
        warm.run(specs[:-1])
        assert warm.executed == 0 and warm.cache_hits == 3


class TestWorkerCountInvariance:
    def test_sweep_identical_serial_vs_parallel(self):
        specs = tiny_specs()
        serial = SweepRunner(jobs=1).run(specs)
        parallel = SweepRunner(jobs=4).run(specs)
        assert canonical_bytes(serial) == canonical_bytes(parallel)

    def test_policy_comparison_identical_cold_and_warm(self, tmp_path):
        args = (SystemConfig(), ["gcc_like", "mcf_like"], ["never", "mapg"],
                250)
        serial_cold = run_policy_comparison(*args, seed=3)
        parallel_cold = run_policy_comparison(
            *args, seed=3, jobs=4, cache=ResultCache(str(tmp_path)))
        serial_warm = run_policy_comparison(
            *args, seed=3, jobs=1, cache=ResultCache(str(tmp_path)))
        parallel_warm = run_policy_comparison(
            *args, seed=3, jobs=4, cache=ResultCache(str(tmp_path)))
        reference = canonical_bytes(serial_cold)
        assert canonical_bytes(parallel_cold) == reference
        assert canonical_bytes(serial_warm) == reference
        assert canonical_bytes(parallel_warm) == reference

    def test_seed_study_identical_serial_vs_parallel(self):
        config = with_policy(SystemConfig(), "mapg")
        serial = run_seed_study(config, "gcc_like", 250, (3, 5))
        parallel = run_seed_study(config, "gcc_like", 250, (3, 5), jobs=4)
        assert serial == parallel  # float tuples compare bit-exactly


class TestTraceMemoization:
    def test_trace_generated_once_per_workload(self, monkeypatch):
        # The satellite bug: run_policy_comparison used to regenerate the
        # identical trace once per *policy*.  Through the engine's
        # TraceStore it is generated once per (profile, seed).
        constructions = []
        real = tracestore_module.SyntheticTraceGenerator

        def counting(profile, seed):
            constructions.append((profile.name, seed))
            return real(profile, seed=seed)

        monkeypatch.setattr(tracestore_module, "SyntheticTraceGenerator",
                            counting)
        run_policy_comparison(SystemConfig(), ["gcc_like"],
                              ["never", "naive", "mapg"], 200, seed=3)
        assert constructions == [("gcc_like", 3)]

        constructions.clear()
        run_policy_comparison(SystemConfig(), ["gcc_like", "mcf_like"],
                              ["never", "mapg"], 200, seed=3)
        assert constructions == [("gcc_like", 3), ("mcf_like", 3)]


class TestStreamingMemory:
    def test_run_workload_streams_the_trace(self):
        # Regression guard for the satellite fix: run_workload must feed
        # the generator straight into the simulator.  Reference point: the
        # same cell with the trace materialized as lists first.  Python-
        # level peaks via tracemalloc; the materialized run's peak carries
        # the whole op list on top of the model state, so the streamed
        # peak must sit well below it.
        config = with_policy(SystemConfig(), "mapg")
        num_ops, warmup_ops, seed = 20_000, 1_000, 3

        materialized = SelfProfiler(trace_malloc=True)
        with materialized.stage("materialized"):
            generator = SyntheticTraceGenerator(get_profile("gcc_like"),
                                                seed=seed)
            warm = list(generator.operations(warmup_ops))
            measured = list(generator.operations(num_ops))
            simulator = Simulator(config, workload="gcc_like", seed=seed)
            simulator.warm_up(warm)
            reference = simulator.run(measured)

        streamed = SelfProfiler(trace_malloc=True)
        with streamed.stage("streamed"):
            result = run_workload(config, "gcc_like", num_ops, seed=seed,
                                  warmup_ops=warmup_ops)

        assert result == reference  # same cell, same numbers
        peak_streamed = streamed.report()["peak_traced_bytes"]
        peak_materialized = materialized.report()["peak_traced_bytes"]
        assert peak_streamed < 0.75 * peak_materialized, (
            f"streamed peak {peak_streamed:,} B is not clearly below the "
            f"materialized peak {peak_materialized:,} B — is run_workload "
            f"building an op list again?")
