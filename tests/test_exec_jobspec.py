"""Unit tests for JobSpec (cell identity) and TraceStore (trace memo)."""

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.exec import JobSpec, TraceStore
from repro.exec.version import digest_tree
from repro.sim.runner import run_workload, with_policy
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticTraceGenerator


def spec(**overrides):
    base = dict(config=SystemConfig(), profile="gcc_like", num_ops=500, seed=3)
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpecKey:
    def test_key_is_stable_across_instances(self):
        assert spec().key == spec().key

    def test_every_field_changes_the_key(self):
        base = spec().key
        assert spec(profile="mcf_like").key != base
        assert spec(num_ops=501).key != base
        assert spec(seed=4).key != base
        assert spec(warmup_ops=100).key != base
        assert spec(temperature_c=85.0).key != base

    def test_any_config_field_changes_the_key(self):
        base = spec().key
        config = SystemConfig()
        # One representative knob from each subtree of the config.
        variants = [
            with_policy(config, "naive"),
            config.replace(dram=config.dram.scaled(2.0)),
            config.replace(core=dataclasses.replace(config.core, issue_width=2)),
            config.replace(gating=dataclasses.replace(config.gating, bet_scale=2.0)),
        ]
        keys = {spec(config=variant).key for variant in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_payload_round_trip_preserves_key(self):
        original = spec(warmup_ops=200, temperature_c=95.0)
        rebuilt = JobSpec.from_payload(original.to_payload())
        assert rebuilt == original
        assert rebuilt.key == original.key

    def test_validation(self):
        with pytest.raises(ConfigError):
            spec(profile="")
        with pytest.raises(ConfigError):
            spec(num_ops=-1)
        with pytest.raises(ConfigError):
            spec(warmup_ops=-1)


class TestJobSpecExecute:
    def test_matches_run_workload(self):
        cell = spec(config=with_policy(SystemConfig(), "mapg"))
        direct = run_workload(cell.config, cell.profile, cell.num_ops,
                              seed=cell.seed)
        assert cell.execute() == direct

    def test_matches_run_workload_with_warmup_and_store(self):
        cell = spec(config=with_policy(SystemConfig(), "mapg"),
                    warmup_ops=300)
        direct = run_workload(cell.config, cell.profile, cell.num_ops,
                              seed=cell.seed, warmup_ops=cell.warmup_ops)
        assert cell.execute() == direct
        assert cell.execute(trace_store=TraceStore()) == direct


class TestTraceStore:
    def test_memoizes_per_cell(self):
        store = TraceStore()
        first = store.traces("gcc_like", 200, seed=3, warmup_ops=50)
        second = store.traces("gcc_like", 200, seed=3, warmup_ops=50)
        assert first is second
        assert store.hits == 1 and store.misses == 1

    def test_reproduces_the_two_call_generator_shape(self):
        # The generator's phase schedule advances across the warmup
        # boundary; the store must be op-for-op identical to run_workload's
        # single-generator, two-call pattern.
        generator = SyntheticTraceGenerator(get_profile("mcf_like"), seed=7)
        warm = tuple(generator.operations(60))
        measured = tuple(generator.operations(150))
        assert TraceStore().traces("mcf_like", 150, seed=7, warmup_ops=60) \
            == (warm, measured)

    def test_no_warmup_gives_empty_warm_trace(self):
        warm, measured = TraceStore().traces("gcc_like", 100, seed=3)
        assert warm == ()
        assert len(measured) == 100

    def test_lru_eviction_is_bounded(self):
        store = TraceStore(max_entries=2)
        for seed in (1, 2, 3):
            store.traces("gcc_like", 50, seed=seed)
        store.traces("gcc_like", 50, seed=1)  # evicted: regenerates
        assert store.misses == 4

    def test_rejects_bad_bound(self):
        with pytest.raises(ConfigError):
            TraceStore(max_entries=0)


class TestDigestTree:
    def test_sensitive_to_content_and_names(self, tmp_path):
        (tmp_path / "model.py").write_text("X = 1\n")
        base = digest_tree(str(tmp_path))
        assert digest_tree(str(tmp_path)) == base  # deterministic

        (tmp_path / "model.py").write_text("X = 2\n")
        edited = digest_tree(str(tmp_path))
        assert edited != base

        (tmp_path / "extra.py").write_text("Y = 1\n")
        assert digest_tree(str(tmp_path)) != edited

    def test_excluded_dirs_and_non_python_ignored(self, tmp_path):
        (tmp_path / "model.py").write_text("X = 1\n")
        base = digest_tree(str(tmp_path))
        (tmp_path / "lint").mkdir()
        (tmp_path / "lint" / "rule.py").write_text("R = 1\n")
        (tmp_path / "notes.txt").write_text("not code\n")
        assert digest_tree(str(tmp_path)) == base
