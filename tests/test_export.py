"""Tests for the CSV/JSON exporters."""

import csv
import json

import pytest

from repro.analysis.export import (
    matrix_to_csv,
    report_to_csv,
    report_to_json,
    result_to_dict,
    results_to_json,
)
from repro.analysis.report import ExperimentReport
from repro.errors import ReproError
from repro.sim.results import SimulationResult


def make_result(workload="w", policy="mapg"):
    return SimulationResult(
        workload=workload, policy=policy, instructions=1000,
        total_cycles=5000, penalty_cycles=50, energy_j=1e-3,
        event_energy_j=1e-5, event_count=10,
        state_cycles={"active": 1000, "sleep": 4000},
        state_energy_j={"active": 9e-4, "sleep": 1e-5},
        controller_counters={"gated": 10.0},
        memory_counters={"l1_hits": 900.0})


def make_report():
    report = ExperimentReport("F2", "test", headers=["a", "b"])
    report.add_row("x", 1)
    report.add_row("y", 2)
    report.add_note("a note")
    return report


class TestReportExport:
    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "r.csv"
        assert report_to_csv(make_report(), path) == 2
        with open(path, newline="") as stream:
            rows = list(csv.reader(stream))
        assert rows == [["a", "b"], ["x", "1"], ["y", "2"]]

    def test_json_document(self, tmp_path):
        path = tmp_path / "r.json"
        report_to_json(make_report(), path)
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "F2"
        assert payload["rows"] == [["x", "1"], ["y", "2"]]
        assert payload["notes"] == ["a note"]


class TestResultExport:
    def test_result_dict_is_json_safe(self):
        record = result_to_dict(make_result())
        json.dumps(record)  # must not raise
        assert record["ipc"] == pytest.approx(0.2)
        assert record["state_cycles"]["sleep"] == 4000

    def test_matrix_csv_long_form(self, tmp_path):
        matrix = {
            "w1": {"never": make_result("w1", "never"),
                   "mapg": make_result("w1", "mapg")},
            "w2": {"never": make_result("w2", "never")},
        }
        path = tmp_path / "m.csv"
        assert matrix_to_csv(matrix, path) == 3
        with open(path, newline="") as stream:
            rows = list(csv.DictReader(stream))
        assert {(r["workload"], r["policy"]) for r in rows} == {
            ("w1", "never"), ("w1", "mapg"), ("w2", "never")}

    def test_matrix_json_nested(self, tmp_path):
        matrix = {"w1": {"mapg": make_result("w1", "mapg")}}
        path = tmp_path / "m.json"
        results_to_json(matrix, path)
        payload = json.loads(path.read_text())
        assert payload["w1"]["mapg"]["total_cycles"] == 5000

    def test_empty_matrix_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            matrix_to_csv({}, tmp_path / "x.csv")
        with pytest.raises(ReproError):
            results_to_json({}, tmp_path / "x.json")
