"""Kernel-vs-oracle parity: the fast engine's bit-identity contract.

``repro.fastsim`` promises results **byte-identical** to the event-driven
oracle — same energy ledger floats, same histogram moments, same
controller counters — not "close".  These tests sweep the whole workload
profile x policy matrix (cold and warmed up), push fast-engine cells
through the SweepRunner at ``jobs`` 1 and 4, and fuzz randomized segment
traces, comparing the canonical JSON of every ``SimulationResult`` field.
Any diff is a kernel bug by definition.
"""

import dataclasses
import json
import random

import pytest

from repro.config import SystemConfig
from repro.core.crosscheck import crosscheck_engines, verify_engines
from repro.errors import ConfigError
from repro.exec import JobSpec, SweepRunner
from repro.fastsim import ColumnarTrace, FastSimulator, validate_engine
from repro.sim.runner import run_workload, with_policy
from repro.sim.simulator import Simulator
from repro.trace.format import ComputeBlock, MemoryAccess
from repro.workloads import profile_names

POLICIES = ("never", "naive", "bet_guard", "mapg", "mapg_adaptive", "oracle")


def canonical(result):
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


def assert_identical(config, profile, num_ops, seed=1, warmup_ops=0):
    oracle = run_workload(config, profile, num_ops, seed=seed,
                          warmup_ops=warmup_ops, engine="oracle")
    fast = run_workload(config, profile, num_ops, seed=seed,
                        warmup_ops=warmup_ops, engine="fast")
    assert canonical(fast) == canonical(oracle), \
        f"fast kernel diverged on {profile}/{config.gating.policy}"


class TestColdMatrix:
    @pytest.mark.parametrize("profile", profile_names())
    def test_every_profile_every_policy(self, profile):
        for policy in POLICIES:
            assert_identical(with_policy(SystemConfig(), policy),
                             profile, 1500, seed=11)


class TestWarmedUp:
    @pytest.mark.parametrize("profile", profile_names())
    def test_every_profile_with_warmup(self, profile):
        assert_identical(with_policy(SystemConfig(), "mapg"),
                         profile, 1200, seed=5, warmup_ops=400)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_with_warmup(self, policy):
        assert_identical(with_policy(SystemConfig(), policy),
                         "mcf_like", 1200, seed=3, warmup_ops=400)

    @pytest.mark.parametrize("seed", (1, 2, 5, 11))
    def test_seeds(self, seed):
        assert_identical(with_policy(SystemConfig(), "mapg_adaptive"),
                         "gems_like", 1500, seed=seed, warmup_ops=200)

    def test_temperature_override(self):
        oracle = run_workload(with_policy(SystemConfig(), "mapg"),
                              "lbm_like", 1500, seed=9,
                              temperature_c=110.0, engine="oracle")
        fast = run_workload(with_policy(SystemConfig(), "mapg"),
                            "lbm_like", 1500, seed=9,
                            temperature_c=110.0, engine="fast")
        assert canonical(fast) == canonical(oracle)


class TestThroughSweepRunner:
    def _specs(self, engine):
        config = SystemConfig()
        return [JobSpec(config=with_policy(config, policy),
                        profile=profile, num_ops=1200, seed=7,
                        warmup_ops=warmup, engine=engine)
                for profile in ("mcf_like", "povray_like")
                for policy in ("never", "mapg")
                for warmup in (0, 300)]

    def test_serial_fast_equals_serial_oracle(self):
        oracle = SweepRunner(jobs=1).run(self._specs("oracle"))
        fast = SweepRunner(jobs=1).run(self._specs("fast"))
        assert [canonical(r) for r in fast] == \
            [canonical(r) for r in oracle]

    def test_parallel_fast_equals_serial_oracle(self):
        oracle = SweepRunner(jobs=1).run(self._specs("oracle"))
        fast = SweepRunner(jobs=4).run(self._specs("fast"))
        assert [canonical(r) for r in fast] == \
            [canonical(r) for r in oracle]


class TestRandomizedSegments:
    """Property-style: arbitrary compute/memory segment interleavings."""

    @staticmethod
    def _random_ops(rng, num_ops):
        ops = []
        pc = 0x1000
        for _ in range(num_ops):
            if rng.random() < 0.35:
                ops.append(ComputeBlock(instructions=rng.randint(1, 400)))
            else:
                pc += rng.choice((4, 4, 8, 64))
                ops.append(MemoryAccess(
                    address=rng.randrange(0, 1 << rng.randint(12, 27), 8),
                    pc=pc,
                    is_write=rng.random() < 0.3,
                    dependent=rng.random() < 0.6))
        return ops

    @pytest.mark.parametrize("case_seed", (101, 202, 303, 404, 505))
    def test_random_trace_parity(self, case_seed):
        rng = random.Random(case_seed)
        ops = self._random_ops(rng, 1500)
        policy = rng.choice(POLICIES)
        config = with_policy(SystemConfig(), policy)
        oracle = Simulator(config, workload="fuzz", seed=1).run(iter(ops))
        fast = FastSimulator(config, workload="fuzz", seed=1).run(
            ColumnarTrace(ops))
        assert canonical(fast) == canonical(oracle), \
            f"diverged on fuzz case {case_seed} ({policy})"


class TestEngineContract:
    def test_validate_engine_rejects_unknown(self):
        with pytest.raises(ConfigError):
            validate_engine("warp")
        validate_engine("oracle")
        validate_engine("fast")

    def test_run_workload_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            run_workload(SystemConfig(), "mcf_like", 100, engine="warp")

    def test_jobspec_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            JobSpec(config=SystemConfig(), profile="mcf_like",
                    num_ops=100, engine="warp")

    def test_engine_excluded_from_job_key(self):
        # Bit-identity means the two engines' results are interchangeable,
        # so they deliberately share cache addresses.
        base = dict(config=SystemConfig(), profile="mcf_like", num_ops=100)
        assert JobSpec(engine="oracle", **base).key == \
            JobSpec(engine="fast", **base).key

    def test_engine_survives_payload_roundtrip(self):
        spec = JobSpec(config=SystemConfig(), profile="mcf_like",
                       num_ops=100, engine="fast")
        assert JobSpec.from_payload(spec.to_payload()).engine == "fast"

    def test_crosscheck_reports_fast_path(self):
        check = verify_engines(with_policy(SystemConfig(), "mapg"),
                               "mcf_like", 1200, seed=2, warmup_ops=200)
        assert check.identical
        assert check.used_fast_path
        assert check.oracle_digest == check.fast_digest

    def test_crosscheck_flags_fallback(self):
        # An MLP core (miss_window > 1) is outside the kernel's
        # eligibility envelope, so the comparison degrades to
        # oracle-vs-oracle and says so.
        base = with_policy(SystemConfig(), "mapg")
        config = base.replace(
            core=dataclasses.replace(base.core, miss_window=2))
        check = crosscheck_engines(config, "mcf_like", 600, seed=2)
        assert check.identical
        assert not check.used_fast_path
        assert check.fallback_reasons
