"""Golden-number regression guard.

The simulator is fully deterministic, so the canonical mini-evaluation
(3 workloads x 4 policies, 4000 ops, seed 42) must reproduce the numbers
in ``tests/data/golden.json`` exactly (cycles/counts) or to float
round-off (energy).  A failure here means the *model* changed — if the
change is intentional, regenerate the golden file:

    python - <<'EOF'
    import json
    from repro import SystemConfig, run_policy_comparison
    matrix = run_policy_comparison(
        SystemConfig(), ["mcf_like", "gcc_like", "povray_like"],
        ["never", "naive", "mapg", "oracle"], 4000, seed=42)
    golden = {wl: {pol: {
        "total_cycles": r.total_cycles, "penalty_cycles": r.penalty_cycles,
        "instructions": r.instructions, "energy_j": r.energy_j,
        "offchip_stalls": r.offchip_stalls, "gated_stalls": r.gated_stalls,
        "event_count": r.event_count} for pol, r in per.items()}
        for wl, per in matrix.items()}
    json.dump(golden, open("tests/data/golden.json", "w"), indent=2, sort_keys=True)
    EOF

and record the expected deltas in your commit message.
"""

import json
from pathlib import Path

import pytest

from repro import SystemConfig, run_policy_comparison

GOLDEN_PATH = Path(__file__).parent / "data" / "golden.json"
WORKLOADS = ["mcf_like", "gcc_like", "povray_like"]
POLICIES = ["never", "naive", "mapg", "oracle"]
INTEGER_FIELDS = ("total_cycles", "penalty_cycles", "instructions",
                  "offchip_stalls", "gated_stalls", "event_count")


@pytest.fixture(scope="module")
def matrix():
    return run_policy_comparison(SystemConfig(), WORKLOADS, POLICIES,
                                 4000, seed=42)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("policy", POLICIES)
def test_golden_numbers(matrix, golden, workload, policy):
    result = matrix[workload][policy]
    expected = golden[workload][policy]
    for field in INTEGER_FIELDS:
        assert getattr(result, field) == expected[field], \
            f"{workload}/{policy}.{field} drifted"
    assert result.energy_j == pytest.approx(expected["energy_j"], rel=1e-9), \
        f"{workload}/{policy}.energy_j drifted"
