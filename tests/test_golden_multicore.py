"""Golden regression guard for the multi-core path.

Locks the shared-DRAM interleaving, TAP token arbitration, and per-core
MAPG controllers together.  Regenerate ``tests/data/golden_multicore.json``
with the snippet in this file's sibling ``test_golden.py`` docstring
pattern (same config below, seed 42) after any intentional model change.
"""

import json
from pathlib import Path

import pytest

from repro.config import SystemConfig, TokenConfig
from repro.sim.runner import run_multicore, with_policy

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_multicore.json"
MIX = ["mcf_like", "gems_like", "gcc_like", "povray_like"]


@pytest.fixture(scope="module")
def result():
    config = with_policy(
        SystemConfig(num_cores=4,
                     token=TokenConfig(enabled=True, wake_tokens=2,
                                       token_wait_limit_cycles=400)),
        "mapg")
    return run_multicore(config, MIX, 2500, seed=42)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_makespan(result, golden):
    assert result.makespan_cycles == golden["makespan_cycles"]


def test_total_energy(result, golden):
    assert result.total_energy_j == pytest.approx(
        golden["total_energy_j"], rel=1e-9)


def test_total_penalty(result, golden):
    assert result.total_penalty_cycles == golden["total_penalty_cycles"]


def test_token_counters(result, golden):
    assert {k: v for k, v in result.token_counters.items()} == \
        golden["token_counters"]


@pytest.mark.parametrize("core_id", [0, 1, 2, 3])
def test_per_core(result, golden, core_id):
    measured = result.per_core[core_id]
    expected = golden["per_core"][str(core_id)]
    assert measured.total_cycles == expected["total_cycles"]
    assert measured.offchip_stalls == expected["offchip_stalls"]
    assert measured.gated_stalls == expected["gated_stalls"]
    assert measured.energy_j == pytest.approx(expected["energy_j"], rel=1e-9)
