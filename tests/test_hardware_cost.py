"""Tests for the controller hardware-cost estimator."""

import pytest

from repro.analysis.hardware_cost import HardwareCost, estimate_controller_cost
from repro.config import SystemConfig, TokenConfig
from repro.sim.runner import with_policy


def cost_of(policy, **gating):
    return estimate_controller_cost(with_policy(SystemConfig(), policy, **gating))


class TestEstimates:
    def test_never_costs_nothing(self):
        assert cost_of("never").total_bits == 0

    def test_naive_needs_only_constants_and_timer(self):
        cost = cost_of("naive")
        assert cost.table_bits == 0
        assert cost.fallback_bits == 0
        assert cost.total_bits > 0

    def test_table_predictor_dominates_mapg_cost(self):
        cost = cost_of("mapg", predictor="table")
        assert cost.table_entries == 64
        assert cost.table_bits > cost.fallback_bits + cost.constant_bits

    def test_scalar_predictor_much_cheaper(self):
        table = cost_of("mapg", predictor="table")
        ewma = cost_of("mapg", predictor="ewma")
        assert ewma.total_bits < 0.3 * table.total_bits

    def test_adaptive_adds_one_register(self):
        base = cost_of("mapg", predictor="table")
        adaptive = cost_of("mapg_adaptive", predictor="table")
        assert 0 < adaptive.total_bits - base.total_bits <= 16

    def test_tokens_add_interface_bits(self):
        config = with_policy(
            SystemConfig(token=TokenConfig(enabled=True, wake_tokens=2)),
            "mapg", predictor="table")
        with_tokens = estimate_controller_cost(config)
        without = cost_of("mapg", predictor="table")
        assert with_tokens.total_bits > without.total_bits

    def test_everything_fits_in_sram_noise(self):
        config = with_policy(
            SystemConfig(token=TokenConfig(enabled=True, wake_tokens=2)),
            "mapg_adaptive", predictor="table")
        cost = estimate_controller_cost(config)
        assert cost.total_bytes < 200.0

    def test_bytes_property(self):
        cost = HardwareCost(table_entries=0, table_bits=80, fallback_bits=0,
                            constant_bits=0, control_bits=0)
        assert cost.total_bytes == pytest.approx(10.0)
