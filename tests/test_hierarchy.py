"""Tests for the L1/L2/DRAM hierarchy composition."""

import pytest

from repro.config import CacheConfig, DramConfig
from repro.memory.dram import Dram
from repro.memory.hierarchy import MemoryHierarchy

FREQ = 2e9


def make_hierarchy(l1_mshrs=4, l2_mshrs=4, shared_dram=None):
    l1 = CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                     associativity=2, hit_latency_cycles=2, mshr_entries=l1_mshrs)
    l2 = CacheConfig(name="L2", size_bytes=4096, line_bytes=64,
                     associativity=4, hit_latency_cycles=10, mshr_entries=l2_mshrs)
    return MemoryHierarchy(l1, l2, DramConfig(refresh_latency_ns=0.0), FREQ,
                           shared_dram=shared_dram)


class TestLevels:
    def test_l1_hit(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x1000, cycle=0)
        result = hierarchy.access(0x1000, cycle=1000)
        assert result.level == "l1"
        assert result.total_cycles == 2
        assert not result.off_chip

    def test_first_touch_goes_to_dram(self):
        hierarchy = make_hierarchy()
        result = hierarchy.access(0x1000, cycle=0)
        assert result.level == "dram"
        assert result.off_chip
        assert result.dram is not None

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = make_hierarchy()
        # L1: 1 KiB, 2-way, 8 sets; lines 0x0000 / 0x0200 / 0x0400 share set 0.
        hierarchy.access(0x0000, cycle=0)
        hierarchy.access(0x0200, cycle=1000)
        hierarchy.access(0x0400, cycle=2000)  # evicts 0x0000 from L1
        result = hierarchy.access(0x0000, cycle=3000)
        assert result.level == "l2"
        assert not result.off_chip
        assert result.total_cycles == 2 + 10

    def test_dram_latency_dominates(self):
        hierarchy = make_hierarchy()
        result = hierarchy.access(0x1000, cycle=0)
        # >= controller + tRCD + tCAS + service + bus at 2 GHz (~140 cycles).
        assert result.total_cycles > 100


class TestMshrMerging:
    def test_merge_pays_residual_latency(self):
        hierarchy = make_hierarchy()
        first = hierarchy.access(0x1000, cycle=0)
        # Second access to the same line 40 cycles later merges.
        second = hierarchy.access(0x1000, cycle=40)
        assert second.merged
        assert second.level == "l1"
        residual = first.total_cycles - 40
        assert second.total_cycles == pytest.approx(2 + residual, abs=1)

    def test_merge_cheaper_than_fresh_miss(self):
        hierarchy = make_hierarchy()
        first = hierarchy.access(0x1000, cycle=0)
        merged = hierarchy.access(0x1000, cycle=first.total_cycles // 2)
        assert merged.total_cycles < first.total_cycles

    def test_l1_mshr_full_stalls(self):
        hierarchy = make_hierarchy(l1_mshrs=1)
        hierarchy.access(0x1000, cycle=0)
        result = hierarchy.access(0x8000, cycle=1)  # different line, MSHR full
        assert result.mshr_wait_cycles > 0

    def test_counters_track_merges(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x1000, cycle=0)
        hierarchy.access(0x1000, cycle=10)
        assert hierarchy.counters.get("l1_mshr_merges") == 1


class TestWritebacks:
    def test_dirty_l1_eviction_counted(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x0000, cycle=0, is_write=True)
        hierarchy.access(0x0200, cycle=5000)
        hierarchy.access(0x0400, cycle=10_000)  # evicts dirty 0x0000
        assert hierarchy.counters.get("writebacks") >= 1

    def test_writeback_does_not_inflate_load_latency(self):
        clean = make_hierarchy()
        dirty = make_hierarchy()
        clean.access(0x0000, cycle=0, is_write=False)
        dirty.access(0x0000, cycle=0, is_write=True)
        for hierarchy in (clean, dirty):
            hierarchy.access(0x0200, cycle=50_000)
        lat_clean = clean.access(0x0400, cycle=100_000).total_cycles
        lat_dirty = dirty.access(0x0400, cycle=100_000).total_cycles
        assert lat_dirty == lat_clean


class TestSharedDram:
    def test_shared_dram_couples_bank_state(self):
        shared = Dram(DramConfig(refresh_latency_ns=0.0))
        hier_a = make_hierarchy(shared_dram=shared)
        hier_b = make_hierarchy(shared_dram=shared)
        hier_a.access(0x1000, cycle=0)
        # Same row from the other core: row buffer already open (row hit).
        result = hier_b.access(0x1000 + 0x40, cycle=10_000)
        assert result.dram is not None
        assert result.dram.kind == "row_hit"

    def test_private_dram_by_default(self):
        hier_a = make_hierarchy()
        hier_b = make_hierarchy()
        assert hier_a.dram is not hier_b.dram


class TestStatistics:
    def test_mpki(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x1000, cycle=0)  # one L2 miss
        assert hierarchy.mpki(1000) == pytest.approx(1.0)

    def test_mpki_zero_instructions(self):
        assert make_hierarchy().mpki(0) == 0.0
