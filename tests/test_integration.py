"""Integration tests: the evaluation's shape claims, at small scale.

These are the claims DESIGN.md says a successful reproduction must show.
They run on shortened traces (a few thousand ops) so the full suite stays
fast; the benchmarks re-run them at full scale.
"""

import pytest

from repro.config import GatingConfig, SystemConfig, TokenConfig
from repro.sim.runner import run_multicore, run_policy_comparison, run_workload, with_policy

OPS = 4000
POLICIES = ("never", "naive", "mapg", "oracle")


@pytest.fixture(scope="module")
def matrix():
    return run_policy_comparison(
        SystemConfig(), ["mcf_like", "gcc_like"], list(POLICIES), OPS, seed=7)


class TestPolicyOrdering:
    def test_oracle_has_zero_penalty(self, matrix):
        for workload in matrix:
            oracle = matrix[workload]["oracle"]
            assert oracle.penalty_cycles == 0

    def test_mapg_penalty_below_naive(self, matrix):
        for workload in matrix:
            naive = matrix[workload]["naive"]
            mapg = matrix[workload]["mapg"]
            assert mapg.penalty_cycles < naive.penalty_cycles

    def test_energy_ordering_oracle_best(self, matrix):
        for workload in matrix:
            per_policy = matrix[workload]
            assert per_policy["oracle"].energy_j <= per_policy["mapg"].energy_j
            assert per_policy["mapg"].energy_j < per_policy["never"].energy_j

    def test_mapg_wins_edp_among_realizable_policies(self, matrix):
        """MAPG trades a sliver of naive's sleep (idle-awake margin) for a
        near-zero penalty; energy-delay product is where that wins."""
        for workload in matrix:
            per_policy = matrix[workload]
            base = per_policy["never"]
            edp_mapg = per_policy["mapg"].compare(base).edp_ratio
            edp_naive = per_policy["naive"].compare(base).edp_ratio
            assert edp_mapg < edp_naive

    def test_mapg_recovers_most_of_oracle_savings(self, matrix):
        for workload in matrix:
            per_policy = matrix[workload]
            base = per_policy["never"].energy_j
            oracle_saving = base - per_policy["oracle"].energy_j
            mapg_saving = base - per_policy["mapg"].energy_j
            assert mapg_saving >= 0.6 * oracle_saving

    def test_mapg_penalty_near_zero(self, matrix):
        """The headline claim: gating during memory stalls is ~free."""
        for workload in matrix:
            assert matrix[workload]["mapg"].performance_penalty < 0.01

    def test_memory_bound_saves_more_than_compute_bound(self, matrix):
        mcf = matrix["mcf_like"]
        gcc = matrix["gcc_like"]
        mcf_saving = 1 - mcf["mapg"].energy_j / mcf["never"].energy_j
        gcc_saving = 1 - gcc["mapg"].energy_j / gcc["never"].energy_j
        assert mcf_saving > gcc_saving


class TestBetSensitivity:
    def test_inflated_bet_reduces_gating(self):
        """F3 shape: scaling BET up must reduce gated stalls and savings."""
        config = SystemConfig()
        results = {}
        for scale in (1.0, 8.0, 64.0):
            variant = with_policy(config, "mapg", bet_scale=scale)
            results[scale] = run_workload(variant, "mcf_like", OPS, seed=7)
        assert results[1.0].gated_stalls >= results[8.0].gated_stalls
        assert results[8.0].gated_stalls >= results[64.0].gated_stalls
        assert results[64.0].sleep_fraction <= results[1.0].sleep_fraction

    def test_huge_bet_disables_gating_entirely(self):
        variant = with_policy(SystemConfig(), "mapg", bet_scale=1000.0)
        result = run_workload(variant, "gcc_like", OPS, seed=7)
        assert result.gated_stalls == 0


class TestWakeupHiding:
    def test_naive_penalty_grows_with_wake_latency(self):
        """F5 shape: naive pays wake latency linearly; MAPG stays low."""
        config = SystemConfig()
        naive_penalties = []
        mapg_penalties = []
        for wake_scale in (1.0, 2.0, 4.0):
            naive = run_workload(
                with_policy(config, "naive", wake_scale=wake_scale),
                "mcf_like", OPS, seed=7)
            mapg = run_workload(
                with_policy(config, "mapg", wake_scale=wake_scale),
                "mcf_like", OPS, seed=7)
            naive_penalties.append(naive.performance_penalty)
            mapg_penalties.append(mapg.performance_penalty)
        assert naive_penalties == sorted(naive_penalties)
        assert all(m < n for m, n in zip(mapg_penalties, naive_penalties))

    def test_early_wakeup_ablation(self):
        """F8 shape: disabling early wakeup pushes MAPG toward naive."""
        config = SystemConfig()
        with_early = run_workload(
            with_policy(config, "mapg", early_wakeup=True),
            "mcf_like", OPS, seed=7)
        without_early = run_workload(
            with_policy(config, "mapg", early_wakeup=False),
            "mcf_like", OPS, seed=7)
        assert with_early.penalty_cycles < without_early.penalty_cycles


class TestDramLatencySensitivity:
    def test_slower_memory_increases_savings(self):
        """F4 shape: longer stalls -> more sleep per event."""
        config = SystemConfig()
        fractions = []
        for scale in (0.5, 1.0, 2.0):
            variant = with_policy(config, "mapg").replace(
                dram=config.dram.scaled(scale))
            result = run_workload(variant, "mcf_like", OPS, seed=7)
            fractions.append(result.sleep_fraction)
        assert fractions == sorted(fractions)


class TestMulticoreTokens:
    def test_fewer_tokens_mean_more_deferrals(self):
        profiles = ["mcf_like"] * 4
        results = {}
        for tokens in (1, 4):
            config = with_policy(
                SystemConfig(num_cores=4,
                             token=TokenConfig(enabled=True, wake_tokens=tokens)),
                "naive")
            results[tokens] = run_multicore(config, profiles, 1200, seed=3)
        deferred_1 = results[1].token_counters.get("deferred_grants", 0)
        deferred_4 = results[4].token_counters.get("deferred_grants", 0)
        assert deferred_1 > deferred_4

    def test_token_limit_bounds_extra_penalty(self):
        profiles = ["mcf_like"] * 2
        free = with_policy(SystemConfig(num_cores=2), "naive")
        tight = with_policy(
            SystemConfig(num_cores=2,
                         token=TokenConfig(enabled=True, wake_tokens=1,
                                           token_wait_limit_cycles=50)),
            "naive")
        free_result = run_multicore(free, profiles, 1200, seed=3)
        tight_result = run_multicore(tight, profiles, 1200, seed=3)
        # Token arbitration may add penalty but stays within the same order.
        assert tight_result.total_penalty_cycles >= free_result.total_penalty_cycles
        assert tight_result.total_penalty_cycles < \
            free_result.total_penalty_cycles * 3 + 10_000


class TestPredictionQuality:
    def test_table_predictor_beats_fixed_on_mae(self):
        config = SystemConfig()
        table = run_workload(
            with_policy(config, "mapg", predictor="table"),
            "libquantum_like", OPS, seed=7)
        fixed = run_workload(
            with_policy(config, "mapg", predictor="fixed"),
            "libquantum_like", OPS, seed=7)
        assert table.prediction_mae_cycles < fixed.prediction_mae_cycles
