"""Everything-on integration: all features must compose.

One configuration enabling every optional subsystem at once — windowed-MLP
cores, stride prefetcher, dual sleep modes, adaptive policy, TAP tokens,
non-nominal temperature, warm-up — run single- and multi-core.  The point
is not a specific number but that the features' interactions respect every
accounting invariant.
"""

import dataclasses

import pytest

from repro.config import PrefetcherConfig, SystemConfig, TokenConfig
from repro.sim.runner import run_multicore, run_workload, with_policy
from repro.workloads import generate_trace


def kitchen_sink_config(num_cores=1):
    base = SystemConfig(
        num_cores=num_cores,
        technology="32nm",
        prefetcher=PrefetcherConfig(enabled=True, degree=2),
        token=TokenConfig(enabled=num_cores > 1, wake_tokens=2,
                          token_wait_limit_cycles=400),
    )
    base = base.replace(core=dataclasses.replace(base.core, miss_window=4))
    return with_policy(base, "mapg_adaptive", sleep_mode="dual",
                       predictor="table")


class TestSingleCore:
    @pytest.fixture(scope="class")
    def result(self):
        return run_workload(kitchen_sink_config(), "mcf_like", 4000,
                            seed=23, temperature_c=100.0, warmup_ops=1000)

    def test_ledger_tiles_exactly(self, result):
        assert sum(result.state_cycles.values()) == result.total_cycles

    def test_gating_happened(self, result):
        assert result.gated_stalls > 0
        assert result.sleep_fraction > 0.0

    def test_both_sleep_modes_active(self, result):
        counters = result.controller_counters
        assert counters.get("gated_full", 0) + \
            counters.get("gated_retention", 0) == counters.get("gated", 0)

    def test_prefetcher_engaged(self, result):
        assert result.memory_counters.get("prefetch_fills", 0) > 0

    def test_penalty_bounded(self, result):
        assert result.performance_penalty < 0.05

    def test_energy_positive_and_finite(self, result):
        assert 0.0 < result.energy_j < 1.0

    def test_still_saves_vs_never(self):
        config = kitchen_sink_config()
        never = run_workload(with_policy(config, "never"), "mcf_like", 4000,
                             seed=23, temperature_c=100.0, warmup_ops=1000)
        gated = run_workload(config, "mcf_like", 4000,
                             seed=23, temperature_c=100.0, warmup_ops=1000)
        assert gated.energy_j < never.energy_j


class TestMultiCore:
    @pytest.fixture(scope="class")
    def result(self):
        return run_multicore(kitchen_sink_config(num_cores=4),
                             ["mcf_like", "gems_like", "omnetpp_like",
                              "gcc_like"],
                             2500, seed=23)

    def test_all_cores_complete(self, result):
        assert set(result.per_core) == {0, 1, 2, 3}
        for core_result in result.per_core.values():
            assert sum(core_result.state_cycles.values()) == \
                core_result.total_cycles

    def test_token_arbitration_engaged(self, result):
        assert result.token_counters.get("requests", 0) > 0

    def test_makespan_covers_every_core(self, result):
        assert result.makespan_cycles >= max(
            r.total_cycles for r in result.per_core.values()) - 1

    def test_deterministic(self, result):
        again = run_multicore(kitchen_sink_config(num_cores=4),
                              ["mcf_like", "gems_like", "omnetpp_like",
                               "gcc_like"],
                              2500, seed=23)
        assert again.total_energy_j == pytest.approx(result.total_energy_j)
        assert again.makespan_cycles == result.makespan_cycles
