"""The per-file result cache: hits, invalidation, and correctness."""

import textwrap

import repro.lint.cache as cache_module
from repro.lint.cache import ResultCache, ruleset_version
from repro.lint.runner import lint_paths


def write_tree(tmp_path, body="def f(stall_cycles, wake_s):\n"
                              "    return stall_cycles + wake_s\n"):
    module = tmp_path / "repro" / "sim" / "mod.py"
    module.parent.mkdir(parents=True, exist_ok=True)
    module.write_text(textwrap.dedent(body), encoding="utf-8")
    return module


class TestResultCache:
    def test_cold_then_warm(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = str(tmp_path / "cache")

        cold = ResultCache(cache_dir)
        first = lint_paths([str(tmp_path / "repro")], cache=cold)
        assert cold.misses == 1 and cold.hits == 0

        warm = ResultCache(cache_dir)
        second = lint_paths([str(tmp_path / "repro")], cache=warm)
        assert warm.hits == 1 and warm.misses == 0
        assert second.all_findings == first.all_findings

    def test_content_change_invalidates(self, tmp_path):
        module = write_tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "repro")],
                   cache=ResultCache(cache_dir))

        module.write_text("def f(stall_cycles):\n    return stall_cycles\n",
                          encoding="utf-8")
        cache = ResultCache(cache_dir)
        report = lint_paths([str(tmp_path / "repro")], cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        assert report.ok  # the edit removed the violation

    def test_ruleset_version_invalidates(self, tmp_path, monkeypatch):
        write_tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "repro")], cache=ResultCache(cache_dir))

        monkeypatch.setattr(cache_module, "_ruleset_version",
                            "different-linter")
        cache = ResultCache(cache_dir)
        lint_paths([str(tmp_path / "repro")], cache=cache)
        assert cache.misses == 1 and cache.hits == 0

    def test_effect_schema_bump_invalidates(self, tmp_path, monkeypatch):
        # The phase-1 effect layout is folded into the cache key on its
        # own: bumping EFFECT_SCHEMA must orphan every warm entry, or a
        # new field (e.g. the error-flow model) would deserialize as
        # missing from stale summaries.
        write_tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "repro")], cache=ResultCache(cache_dir))

        before = ruleset_version()
        monkeypatch.setattr(cache_module, "_ruleset_version", None)
        monkeypatch.setattr(cache_module, "EFFECT_SCHEMA",
                            cache_module.EFFECT_SCHEMA + 1)
        assert ruleset_version() != before
        cache = ResultCache(cache_dir)
        lint_paths([str(tmp_path / "repro")], cache=cache)
        assert cache.misses == 1 and cache.hits == 0

    def test_twin_schema_bump_invalidates(self, tmp_path, monkeypatch):
        # Same ratchet for the twin-footprint layout: stale summaries
        # pickled before ModuleTwinFacts existed (or with an older
        # layout) must never feed the TWIN01–TWIN04 drift closures.
        write_tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "repro")], cache=ResultCache(cache_dir))

        before = ruleset_version()
        monkeypatch.setattr(cache_module, "_ruleset_version", None)
        monkeypatch.setattr(cache_module, "TWIN_SCHEMA",
                            cache_module.TWIN_SCHEMA + 1)
        assert ruleset_version() != before
        cache = ResultCache(cache_dir)
        lint_paths([str(tmp_path / "repro")], cache=cache)
        assert cache.misses == 1 and cache.hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        module = write_tree(tmp_path)
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache.key(module.read_bytes())
        entry_path = tmp_path / "cache" / key[:2] / (key + ".pkl")
        entry_path.parent.mkdir(parents=True)
        entry_path.write_bytes(b"not a pickle")
        report = lint_paths([str(tmp_path / "repro")], cache=cache)
        assert cache.misses >= 1
        assert not report.ok  # recomputed, not trusted

    def test_rule_subset_served_from_full_cache(self, tmp_path):
        # Entries store every file rule's findings; switching --rules must
        # hit the same entry and subset at read time.
        write_tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        full = lint_paths([str(tmp_path / "repro")],
                          cache=ResultCache(cache_dir))
        assert any(f.rule_id == "UNIT01" for f in full.findings)

        warm = ResultCache(cache_dir)
        subset = lint_paths([str(tmp_path / "repro")], rule_ids=["DET01"],
                            cache=warm)
        assert warm.hits == 1
        assert subset.findings == []

    def test_cache_dir_self_ignores(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths([str(tmp_path / "repro")], cache=ResultCache(str(cache_dir)))
        assert (cache_dir / ".gitignore").read_text() == "*\n"

    def test_version_is_stable_within_a_process(self):
        assert ruleset_version() == ruleset_version()
        assert len(ruleset_version()) == 20


class TestParallelRunner:
    def test_jobs_pool_matches_serial(self, tmp_path):
        for index in range(4):
            module = tmp_path / "repro" / "sim" / f"mod{index}.py"
            module.parent.mkdir(parents=True, exist_ok=True)
            module.write_text(
                f"def f{index}(stall_cycles, wake_s):\n"
                f"    return stall_cycles + wake_s\n", encoding="utf-8")
        serial = lint_paths([str(tmp_path / "repro")])
        pooled = lint_paths([str(tmp_path / "repro")], jobs=2)
        assert serial.all_findings == pooled.all_findings
        assert len(serial.all_findings) == 4
