"""Tier-1 guard: the repository itself is mapglint-clean.

Runs the full rule set over ``src`` and ``tests`` against the checked-in
baseline (``lint-baseline.json``, currently empty — every historical
finding was fixed rather than grandfathered) and asserts a clean exit.
Also proves the CLI's failure mode: a seeded violation must make
``python -m repro.lint`` exit non-zero.
"""

import textwrap
from pathlib import Path

from repro.lint import Baseline, lint_paths
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).parent.parent
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_repo_is_lint_clean():
    baseline = Baseline.load(str(BASELINE))
    report = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
                        baseline=baseline)
    assert report.files_checked > 100
    assert report.ok, "\n".join(
        f"{f.location()} [{f.rule_id}] {f.message}" for f in report.all_findings)


def test_checked_in_baseline_is_empty():
    """Ratchet: new findings must be fixed, not grandfathered.

    If a future PR genuinely must baseline a finding, it should delete
    this test in the same commit that documents why.
    """
    assert len(Baseline.load(str(BASELINE))) == 0


def test_no_stale_baseline_entries():
    baseline = Baseline.load(str(BASELINE))
    report = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
                        baseline=baseline)
    assert report.stale_baseline == []


def test_seeded_violation_fails_cli(tmp_path, capsys):
    bad = tmp_path / "repro" / "sim" / "bad_module.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(textwrap.dedent("""\
        import random
        import time

        def jitter(stall_cycles, wake_s):
            start = time.time()
            total = stall_cycles + wake_s
            return total * random.random() - start
        """), encoding="utf-8")
    exit_code = lint_main([str(tmp_path)])
    output = capsys.readouterr().out
    assert exit_code == 1
    assert "UNIT01" in output
    assert "DET01" in output


def test_clean_tree_exits_zero(tmp_path, capsys):
    good = tmp_path / "repro" / "sim" / "good_module.py"
    good.parent.mkdir(parents=True)
    good.write_text(textwrap.dedent("""\
        import random

        def jitter(rng: random.Random, stall_cycles: int) -> int:
            return stall_cycles + rng.randrange(4)
        """), encoding="utf-8")
    exit_code = lint_main([str(tmp_path)])
    assert exit_code == 0
    assert "clean" in capsys.readouterr().out


def test_json_format(tmp_path, capsys):
    bad = tmp_path / "module.py"
    bad.write_text("pair = (PgState.SLEEP, PgState.ACTIVE)\n",
                   encoding="utf-8")
    exit_code = lint_main([str(bad), "--format", "json"])
    assert exit_code == 1
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "FSM01"


def test_syntax_error_is_reported_not_raised(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    exit_code = lint_main([str(bad)])
    assert exit_code == 1
    assert "SYNTAX" in capsys.readouterr().out
