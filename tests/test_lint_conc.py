"""Concurrency model extraction and the CONC01–CONC04 rules.

Synthetic modules live under ``repro/...`` paths (a tmp-dir ``repro``
tree is *not* a test path), mirroring test_lint_effects.py; the seeded
defects in :class:`TestSeededDefects` drive each rule through the full
``lint_paths`` pipeline and assert the spawn-to-access chain survives to
the finding text.
"""

import ast
import textwrap

from repro.lint.base import parse_suppressions
from repro.lint.project import ProjectModel, extract_summary
from repro.lint.project.concurrency import concurrent_roots, qualify_lock
from repro.lint.project.effects import (
    GUARDED_WRITE, LOCK, SHARED_WRITE, THREAD, extract_module_effects,
    is_lock_name, parse_guarded_pragmas)
from repro.lint.runner import lint_paths, run_project_rules


def summarize(path, source):
    source = textwrap.dedent(source)
    return extract_summary(path, source, ast.parse(source),
                           parse_suppressions(source))


def effects_of(path, source):
    source = textwrap.dedent(source)
    return extract_module_effects(path, source, ast.parse(source))


def findings_for(modules, rule_id):
    summaries = [summarize(path, src) for path, src in modules.items()]
    return run_project_rules(summaries, rule_ids=[rule_id])


def kinds_of(module_effects, func_name):
    for info in module_effects.functions:
        if info.name == func_name:
            return {effect.kind for effect in info.effects}
    return set()


class TestConcurrencyExtraction:
    def test_thread_and_task_spawn_sites(self):
        effects = effects_of("repro/obs/daemon.py", """
            import asyncio, threading

            def start(loop):
                thread = threading.Thread(target=_watch)
                thread.start()
                loop.create_task(_poll())

            def _watch():
                pass

            async def _poll():
                pass
        """)
        sites = {(s.kind, s.api, s.worker_name) for s in effects.spawn_sites}
        assert ("thread", "threading.Thread", "_watch") in sites
        assert ("task", "loop.create_task", "_poll") in sites
        assert THREAD in kinds_of(effects, "start")

    def test_lock_globals_and_guarded_bindings(self):
        effects = effects_of("repro/obs/shared.py", """
            import threading

            _LOCK = threading.Lock()
            _STATE = {}  # mapglint: guarded-by=_LOCK

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table = {}  # mapglint: guarded-by=self._lock
        """)
        assert effects.lock_globals == frozenset({"_LOCK"})
        bound = {(b.symbol, b.lock, b.scope)
                 for b in effects.guarded_bindings}
        assert ("_STATE", "_LOCK", "global") in bound
        assert ("_table", "self._lock", "attr") in bound

    def test_guarded_write_carries_locks_held(self):
        effects = effects_of("repro/obs/shared.py", """
            import threading

            _LOCK = threading.Lock()
            _STATE = {}  # mapglint: guarded-by=_LOCK

            def locked(key):
                with _LOCK:
                    _STATE[key] = 1

            def bare(key):
                _STATE[key] = 1
        """)
        (locked,) = [e for info in effects.functions
                     if info.name == "locked"
                     for e in info.effects if e.kind == GUARDED_WRITE]
        assert locked.locks_held == ("_LOCK",)
        (bare,) = [e for info in effects.functions
                   if info.name == "bare"
                   for e in info.effects if e.kind == GUARDED_WRITE]
        assert bare.locks_held == ()

    def test_init_is_exempt_from_guarded_writes(self):
        effects = effects_of("repro/obs/shared.py", """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table = {}  # mapglint: guarded-by=self._lock

                def put(self, key):
                    self._table[key] = 1
        """)
        assert GUARDED_WRITE not in kinds_of(effects, "__init__")
        assert GUARDED_WRITE in kinds_of(effects, "put")

    def test_shared_attr_write_detected(self):
        effects = effects_of("repro/sim/shared.py", """
            class Model:
                cache = {}

                def remember(self, key, value):
                    Model.cache[key] = value

                def remember_via_method(self, key):
                    self.cache.setdefault(key, [])
        """)
        assert SHARED_WRITE in kinds_of(effects, "remember")
        assert SHARED_WRITE in kinds_of(effects, "remember_via_method")

    def test_lock_ops_record_structure(self):
        effects = effects_of("repro/obs/locks.py", """
            def discipline(a_lock, b_lock, flag):
                a_lock.acquire()
                try:
                    pass
                finally:
                    a_lock.release()
                with a_lock:
                    with b_lock:
                        pass
                if flag:
                    b_lock.release()
        """)
        ops = {(op.op, op.lock, op.conditional, op.in_finally,
                op.held_before) for op in effects.lock_ops}
        assert ("acquire", "a_lock", False, False, ()) in ops
        assert ("release", "a_lock", False, True, ()) in ops
        assert ("with", "b_lock", False, False, ("a_lock",)) in ops
        assert ("release", "b_lock", True, False, ()) in ops

    def test_file_writes_and_replace_in_function(self):
        effects = effects_of("repro/exec/store.py", """
            import os

            def torn(entry_path, payload):
                with open(entry_path, "w") as handle:
                    handle.write(payload)

            def atomic(entry_path, payload):
                tmp = entry_path + ".tmp"
                with open(tmp, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, entry_path)

            def reader(entry_path):
                with open(entry_path) as handle:
                    return handle.read()
        """)
        writes = {(w.path_repr, w.replace_in_function)
                  for w in effects.file_writes}
        assert ("entry_path", False) in writes
        assert ("tmp", True) in writes
        assert len(writes) == 2  # read-mode opens are not write sites

    def test_pool_submission_records_locks_held(self):
        effects = effects_of("repro/exec/launcher.py", """
            def fan_out(pool, items, state_lock):
                with state_lock:
                    return pool.map(_worker, items)

            def _worker(item):
                return item
        """)
        (submission,) = effects.pool_submissions
        assert submission.locks_held == ("state_lock",)

    def test_lock_name_heuristic(self):
        assert is_lock_name("self._lock")
        assert is_lock_name("_CACHE_MUTEX")
        assert is_lock_name("state_cond")
        assert is_lock_name("sem")
        assert not is_lock_name("self.blocked_cycles")
        assert not is_lock_name("clock")  # a clock is not a lock

    def test_guarded_pragma_parsing(self):
        pragmas = parse_guarded_pragmas(
            "X = {}  # mapglint: guarded-by=_LOCK\n"
            "Y = {}\n"
            "Z = {}  # mapglint: guarded-by=self._lock\n")
        assert pragmas == {1: "_LOCK", 3: "self._lock"}

    def test_concurrent_roots_resolve_workers(self):
        model = ProjectModel([summarize("repro/obs/daemon.py", """
            import threading

            def start():
                threading.Thread(target=_watch).start()

            def _watch():
                pass

            def fan_out(pool, items):
                return pool.map(_cell, items)

            def _cell(item):
                return item
        """)])
        roots = {(r.kind, r.worker_name) for r in concurrent_roots(model)}
        assert roots == {("thread", "_watch"), ("pool", "_cell")}

    def test_lock_identity_qualification(self):
        # self-locks are per-class, module locks per-module, parameters
        # per-function — unrelated locks sharing a spelling never alias.
        a = qualify_lock("repro/a.py", "repro/a.py::Alpha.step",
                         "self._lock")
        b = qualify_lock("repro/a.py", "repro/a.py::Beta.step",
                         "self._lock")
        assert a != b
        m1 = qualify_lock("repro/a.py", "repro/a.py::one", "_LOCK",
                          module_locks=frozenset({"_LOCK"}))
        m2 = qualify_lock("repro/a.py", "repro/a.py::two", "_LOCK",
                          module_locks=frozenset({"_LOCK"}))
        assert m1 == m2
        p1 = qualify_lock("repro/a.py", "repro/a.py::one", "a_lock")
        p2 = qualify_lock("repro/a.py", "repro/a.py::two", "a_lock")
        assert p1 != p2


class TestSharedStateRace:
    def test_guarded_global_write_without_lock_fires(self):
        findings = findings_for({"repro/obs/state.py": """
            import threading

            _LOCK = threading.Lock()
            _STATE = {}  # mapglint: guarded-by=_LOCK

            def poke(key):
                _STATE[key] = 1
        """}, "CONC01")
        (finding,) = findings
        assert finding.rule_id == "CONC01"
        assert "guarded-by" in finding.message
        assert "_LOCK" in finding.message

    def test_guarded_write_with_binding_lock_is_silent(self):
        findings = findings_for({"repro/obs/state.py": """
            import threading

            _LOCK = threading.Lock()
            _STATE = {}  # mapglint: guarded-by=_LOCK

            def poke(key):
                with _LOCK:
                    _STATE[key] = 1
        """}, "CONC01")
        assert findings == []

    def test_guarded_attr_write_without_lock_fires(self):
        findings = findings_for({"repro/obs/registry.py": """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._metrics = {}  # mapglint: guarded-by=self._lock

                def put(self, name, metric):
                    self._metrics[name] = metric
        """}, "CONC01")
        (finding,) = findings
        assert "_metrics" in finding.message
        assert "self._lock" in finding.message

    def test_thread_reachable_global_write_fires_with_chain(self):
        findings = findings_for({"repro/obs/daemon.py": """
            import threading

            _TICKS = {}

            def start():
                threading.Thread(target=_watch).start()

            def _watch():
                _step()

            def _step():
                _TICKS["n"] = 1
        """}, "CONC01")
        (finding,) = findings
        assert "_watch -> _step" in finding.message
        assert "threading.Thread" in finding.message

    def test_thread_reachable_write_under_lock_is_silent(self):
        findings = findings_for({"repro/obs/daemon.py": """
            import threading

            _LOCK = threading.Lock()
            _TICKS = {}

            def start():
                threading.Thread(target=_watch).start()

            def _watch():
                with _LOCK:
                    _TICKS["n"] = 1
        """}, "CONC01")
        assert findings == []

    def test_pool_reachable_shared_attr_write_fires(self):
        findings = findings_for({"repro/exec/launcher.py": """
            class Model:
                cache = {}

            def _worker(item):
                Model.cache[item] = item
                return item

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """}, "CONC01")
        assert any("cache" in f.message for f in findings)

    def test_pool_global_write_is_left_to_pure01(self):
        # One finding per defect: a pool worker's global write is already
        # a PURE01 error, so CONC01 stays quiet on pool roots for it.
        findings = findings_for({"repro/exec/launcher.py": """
            _SEEN = []

            def _worker(item):
                _SEEN.append(item)
                return item

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """}, "CONC01")
        assert findings == []


class TestLockDiscipline:
    def test_acquire_without_release_fires(self):
        findings = findings_for({"repro/obs/locks.py": """
            def grab(state_lock):
                state_lock.acquire()
                return compute()
        """}, "CONC02")
        (finding,) = findings
        assert "no matching release" in finding.message

    def test_acquire_with_finally_release_is_silent(self):
        findings = findings_for({"repro/obs/locks.py": """
            def grab(state_lock):
                state_lock.acquire()
                try:
                    return compute()
                finally:
                    state_lock.release()
        """}, "CONC02")
        assert findings == []

    def test_release_outside_finally_fires(self):
        findings = findings_for({"repro/obs/locks.py": """
            def grab(state_lock):
                state_lock.acquire()
                value = compute()
                state_lock.release()
                return value
        """}, "CONC02")
        (finding,) = findings
        assert "not inside a finally" in finding.message

    def test_conditional_release_fires(self):
        findings = findings_for({"repro/obs/locks.py": """
            def grab(state_lock, flag):
                state_lock.acquire()
                try:
                    return compute()
                finally:
                    if flag:
                        state_lock.release()
        """}, "CONC02")
        (finding,) = findings
        assert "under a branch" in finding.message

    def test_with_blocks_are_silent(self):
        findings = findings_for({"repro/obs/locks.py": """
            def grab(state_lock):
                with state_lock:
                    return compute()
        """}, "CONC02")
        assert findings == []

    def test_inconsistent_module_lock_order_fires(self):
        findings = findings_for({"repro/obs/locks.py": """
            import threading

            _A_LOCK = threading.Lock()
            _B_LOCK = threading.Lock()

            def one():
                with _A_LOCK:
                    with _B_LOCK:
                        pass

            def two():
                with _B_LOCK:
                    with _A_LOCK:
                        pass
        """}, "CONC02")
        (finding,) = findings
        assert "inconsistent lock order" in finding.message
        assert "opposite order" in finding.message

    def test_consistent_order_is_silent(self):
        findings = findings_for({"repro/obs/locks.py": """
            import threading

            _A_LOCK = threading.Lock()
            _B_LOCK = threading.Lock()

            def one():
                with _A_LOCK:
                    with _B_LOCK:
                        pass

            def two():
                with _A_LOCK:
                    with _B_LOCK:
                        pass
        """}, "CONC02")
        assert findings == []

    def test_parameter_locks_never_alias_across_functions(self):
        # Two different parameter locks that happen to share spellings are
        # not provably the same object; the order check must not guess.
        findings = findings_for({"repro/obs/locks.py": """
            def one(a_lock, b_lock):
                with a_lock:
                    with b_lock:
                        pass

            def two(a_lock, b_lock):
                with b_lock:
                    with a_lock:
                        pass
        """}, "CONC02")
        assert findings == []


class TestSpawnHygiene:
    def test_thread_spawn_in_pool_worker_fires(self):
        findings = findings_for({"repro/exec/launcher.py": """
            import threading

            def _worker(item):
                threading.Thread(target=_task).start()
                return item

            def _task():
                pass

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """}, "CONC03")
        (finding,) = findings
        assert "spawns a thread" in finding.message
        assert "_worker" in finding.message

    def test_module_lock_in_pool_worker_fires(self):
        findings = findings_for({"repro/exec/launcher.py": """
            import threading

            _LOCK = threading.Lock()

            def _worker(item):
                with _LOCK:
                    return item

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """}, "CONC03")
        (finding,) = findings
        assert "synchronizes against nobody" in finding.message

    def test_submission_under_held_lock_fires(self):
        findings = findings_for({"repro/exec/launcher.py": """
            def fan_out(pool, items, state_lock):
                with state_lock:
                    return pool.map(_worker, items)

            def _worker(item):
                return item
        """}, "CONC03")
        (finding,) = findings
        assert "while holding" in finding.message
        assert "state_lock" in finding.message

    def test_clean_worker_is_silent(self):
        findings = findings_for({"repro/exec/launcher.py": """
            def _worker(item):
                return item * 2

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """}, "CONC03")
        assert findings == []


class TestAtomicPersistence:
    def test_in_place_cache_write_fires(self):
        findings = findings_for({"repro/exec/store.py": """
            def save(entry_path, payload):
                with open(entry_path, "w") as handle:
                    handle.write(payload)
        """}, "CONC04")
        (finding,) = findings
        assert "os.replace" in finding.message

    def test_temp_file_plus_replace_is_silent(self):
        findings = findings_for({"repro/exec/store.py": """
            import os

            def save(entry_path, payload):
                tmp = entry_path + ".tmp"
                with open(tmp, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, entry_path)
        """}, "CONC04")
        assert findings == []

    def test_non_cache_paths_are_silent(self):
        findings = findings_for({"repro/obs/report.py": """
            def dump(report_path, payload):
                with open(report_path, "w") as handle:
                    handle.write(payload)
        """}, "CONC04")
        assert findings == []

    def test_cache_write_with_replace_in_function_is_silent(self):
        findings = findings_for({"repro/exec/store.py": """
            import os

            def save(cache_dir, key, payload):
                staging = cache_dir + "/staging"
                with open(staging, "w") as handle:
                    handle.write(payload)
                os.replace(staging, cache_dir + "/" + key)
        """}, "CONC04")
        assert findings == []


class TestSuppressionAndScope:
    def test_per_line_disable_suppresses_conc01(self):
        findings = findings_for({"repro/obs/state.py": """
            import threading

            _LOCK = threading.Lock()
            _STATE = {}  # mapglint: guarded-by=_LOCK

            def poke(key):
                _STATE[key] = 1  # mapglint: disable=CONC01
        """}, "CONC01")
        assert findings == []

    def test_test_paths_are_out_of_scope(self):
        findings = findings_for({"tests/test_something.py": """
            import threading

            _LOCK = threading.Lock()
            _STATE = {}  # mapglint: guarded-by=_LOCK

            def poke(key):
                _STATE[key] = 1
        """}, "CONC01")
        assert findings == []


class TestSeededDefects:
    """Full-pipeline seeded defects, one per CONC rule (UNIT02-pattern)."""

    def _tree(self, tmp_path, rel, body):
        target = tmp_path
        for part in rel.split("/"):
            target = target / part
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
        return target

    def test_seeded_unlocked_write_under_thread_caught(self, tmp_path):
        self._tree(tmp_path, "repro/obs/daemon.py", """
            import threading

            _EVENTS = []

            def start_watcher():
                thread = threading.Thread(target=_watch)
                thread.start()
                return thread

            def _watch():
                _EVENTS.append("tick")
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["CONC01"])
        (finding,) = report.findings
        assert finding.rule_id == "CONC01"
        # The spawn-to-access chain names the real path to the write.
        assert "_watch" in finding.message
        assert "threading.Thread" in finding.line_text

    def test_seeded_unstructured_acquire_caught(self, tmp_path):
        self._tree(tmp_path, "repro/obs/daemon.py", """
            import threading

            _LOCK = threading.Lock()

            def enter():
                _LOCK.acquire()
                return True
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["CONC02"])
        (finding,) = report.findings
        assert finding.rule_id == "CONC02"
        assert "with _LOCK:" in finding.message

    def test_seeded_thread_spawning_pool_payload_caught(self, tmp_path):
        self._tree(tmp_path, "repro/exec/launcher.py", """
            import threading

            def _cell(item):
                helper = threading.Thread(target=_flush)
                helper.start()
                return item

            def _flush():
                pass

            def fan_out(pool, items):
                return pool.map(_cell, items)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["CONC03"])
        (finding,) = report.findings
        assert finding.rule_id == "CONC03"
        assert "_cell" in finding.message
        assert "pool.map" in finding.line_text

    def test_seeded_torn_cache_write_caught(self, tmp_path):
        self._tree(tmp_path, "repro/exec/store.py", """
            import json

            def persist(cache_entry, payload):
                with open(cache_entry, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["CONC04"])
        (finding,) = report.findings
        assert finding.rule_id == "CONC04"
        assert "os.replace" in finding.message
