"""Concurrent lint invocations sharing one ``.mapglint-cache/``.

The CONC04 story for our own caches, turned into regressions: two
processes racing ``ResultCache.store`` on the same content-addressed key
must both succeed (whichever ``os.replace`` lands last wins with
identical bytes), a temp file swept away before the replace is a no-op,
and two simultaneous cold ``python -m repro.lint --jobs 2`` runs over
the same tree must produce identical findings and leave a consistent,
fully-warm cache behind.
"""

import ast
import glob
import json
import os
import pickle
import subprocess
import sys
import textwrap

from repro.lint.base import parse_suppressions
from repro.lint.cache import ResultCache
from repro.lint.project import extract_summary

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_HAMMER = """
import ast, sys
sys.path.insert(0, {src!r})
from repro.lint.base import parse_suppressions
from repro.lint.cache import ResultCache
from repro.lint.project import extract_summary

source = "VALUE = 1\\n"
summary = extract_summary("repro/x.py", source, ast.parse(source),
                          parse_suppressions(source))
cache = ResultCache({cache_dir!r})
key = cache.key(b"shared-payload")
for _ in range(200):
    cache.store(key, [], summary)
"""


def _summary(source="VALUE = 1\n"):
    return extract_summary("repro/x.py", source, ast.parse(source),
                           parse_suppressions(source))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


class TestStoreRaces:
    def test_two_processes_race_one_key(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        script = _HAMMER.format(src=os.path.join(REPO_ROOT, "src"),
                                cache_dir=cache_dir)
        procs = [subprocess.Popen([sys.executable, "-c", script],
                                  stderr=subprocess.PIPE)
                 for _ in range(2)]
        for proc in procs:
            _, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr.decode()
        cache = ResultCache(cache_dir)
        key = cache.key(b"shared-payload")
        loaded = cache.load(key)
        assert loaded is not None
        assert not glob.glob(os.path.join(cache_dir, "**", "*.tmp"),
                             recursive=True)

    def test_vanished_tmp_file_is_tolerated(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache.key(b"payload")
        real_replace = os.replace

        def sweeping_replace(src, dst):
            os.unlink(src)  # a concurrent cleaner swept the temp file
            return real_replace(src, dst)  # -> FileNotFoundError

        monkeypatch.setattr(os, "replace", sweeping_replace)
        cache.store(key, [], _summary())  # must not raise
        monkeypatch.undo()
        assert not glob.glob(str(tmp_path / "cache" / "**" / "*.tmp"),
                             recursive=True)
        assert cache.load(key) is None  # nothing published, clean miss

    def test_replace_winner_is_tolerated(self, tmp_path, monkeypatch):
        # The loser of a replace race sees its entry already present;
        # its own replace still succeeds (rename-over is fine) -- but a
        # failed one must degrade to a discarded temp file, not a raise.
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache.key(b"payload")
        cache.store(key, [], _summary())

        def failing_replace(src, dst):
            raise OSError("simulated cross-device failure")

        monkeypatch.setattr(os, "replace", failing_replace)
        cache.store(key, [], _summary())  # must not raise
        monkeypatch.undo()
        assert cache.load(key) is not None  # first write still served
        assert not glob.glob(str(tmp_path / "cache" / "**" / "*.tmp"),
                             recursive=True)


class TestConcurrentCliRuns:
    def _seed_tree(self, tmp_path):
        tree = tmp_path / "proj"
        for rel, body in {
            "repro/sim/clean.py": """
                VALUE_CYCLES = 10

                def double(stall_cycles):
                    return stall_cycles * 2
            """,
            "repro/sim/bad.py": """
                def mix(stall_cycles, wake_s):
                    return stall_cycles + wake_s
            """,
            "repro/exec/store.py": """
                def persist(cache_entry, payload):
                    with open(cache_entry, "w") as handle:
                        handle.write(payload)
            """,
        }.items():
            target = tree
            for part in rel.split("/"):
                target = target / part
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(body), encoding="utf-8")
        return tree

    def test_simultaneous_cold_runs_agree(self, tmp_path):
        tree = self._seed_tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        command = [sys.executable, "-m", "repro.lint", str(tree),
                   "--jobs", "2", "--cache-dir", cache_dir,
                   "--format", "json"]
        procs = [subprocess.Popen(command, stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE, env=_env(),
                                  cwd=REPO_ROOT)
                 for _ in range(2)]
        outputs = []
        for proc in procs:
            stdout, stderr = proc.communicate(timeout=300)
            assert proc.returncode == 1, stderr.decode()  # seeded defects
            outputs.append(stdout.decode())
        first, second = (json.loads(out) for out in outputs)
        assert first == second
        rules = {finding["rule"] for finding in first}
        assert {"UNIT01", "CONC04"} <= rules

        # The shared cache is consistent: no temp litter, every entry a
        # loadable pickle, and a follow-up run is fully warm yet agrees.
        assert not glob.glob(os.path.join(cache_dir, "**", "*.tmp"),
                             recursive=True)
        entries = glob.glob(os.path.join(cache_dir, "**", "*.pkl"),
                            recursive=True)
        assert entries
        for entry in entries:
            with open(entry, "rb") as handle:
                payload = pickle.load(handle)
            assert {"findings", "summary"} <= set(payload)
        warm = subprocess.run(command, capture_output=True, env=_env(),
                              cwd=REPO_ROOT, timeout=300)
        assert warm.returncode == 1
        assert json.loads(warm.stdout.decode()) == first
