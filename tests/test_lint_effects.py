"""Effect inference, propagation, and the CACHE01/PURE01/OBS01/PAR01 rules.

Synthetic modules live under ``repro/...`` paths (a tmp-dir ``repro``
tree is *not* a test path), mirroring test_lint_project.py; the seeded
defects in :class:`TestSeededDefects` follow the UNIT02 seeded-regression
pattern through the full ``lint_paths`` pipeline.
"""

import ast
import textwrap

import repro.lint.cache as cache_module
from repro.lint.base import all_project_rules, parse_suppressions
from repro.lint.cache import ResultCache
from repro.lint.project import ProjectModel, extract_summary
from repro.lint.project.effects import (
    CLOCK, ENV, FS, GLOBAL_READ, GLOBAL_WRITE, PROCESS, RNG,
    EffectPropagator, extract_module_effects, format_chain)
from repro.lint.runner import lint_paths, run_project_rules


def summarize(path, source):
    source = textwrap.dedent(source)
    return extract_summary(path, source, ast.parse(source),
                           parse_suppressions(source))


def effects_of(path, source):
    source = textwrap.dedent(source)
    return extract_module_effects(path, source, ast.parse(source))


def model_of(modules):
    return ProjectModel(
        [summarize(path, src) for path, src in modules.items()])


def findings_for(modules, rule_id):
    summaries = [summarize(path, src) for path, src in modules.items()]
    return run_project_rules(summaries, rule_ids=[rule_id])


def kinds_of(module_effects, func_name):
    for info in module_effects.functions:
        if info.name == func_name:
            return {effect.kind for effect in info.effects}
    return set()


class TestEffectExtraction:
    def test_env_fs_rng_clock_process(self):
        effects = effects_of("repro/sim/mod.py", """
            import os, time, random, shutil, subprocess

            def everything(path):
                mode = os.environ.get("MODE")
                os.getenv("OTHER")
                open(path).read()
                shutil.copy(path, path)
                random.random()
                time.time()
                subprocess.run(["ls"])
                return mode
        """)
        kinds = kinds_of(effects, "everything")
        assert {ENV, FS, RNG, CLOCK, PROCESS} <= kinds

    def test_pathlib_distinctive_methods_only(self):
        # path.replace("\\\\", "/") is a *string* method everywhere in this
        # repo; generic names must never count as filesystem access.
        effects = effects_of("repro/sim/mod.py", """
            def strings(path):
                a = path.replace("x", "y")
                b = path.rename("z")
                return a, b

            def io(path):
                return path.read_text()
        """)
        assert kinds_of(effects, "strings") == set()
        assert kinds_of(effects, "io") == {FS}

    def test_mutable_global_write_and_read(self):
        effects = effects_of("repro/sim/mod.py", """
            _SEEN = {}

            def record(key, value):
                _SEEN[key] = value

            def peek(key):
                return _SEEN.get(key)
        """)
        assert "_SEEN" in effects.mutable_globals
        assert "_SEEN" in effects.mutated_globals
        assert GLOBAL_WRITE in kinds_of(effects, "record")
        assert GLOBAL_READ in kinds_of(effects, "peek")

    def test_global_rebind_via_global_statement(self):
        effects = effects_of("repro/sim/mod.py", """
            _MEMO = None

            def get_memo():
                global _MEMO
                if _MEMO is None:
                    _MEMO = compute()
                return _MEMO
        """)
        assert GLOBAL_WRITE in kinds_of(effects, "get_memo")

    def test_unmutated_registry_is_not_an_effect(self):
        # Import-time-only registries (PROFILES-style) are covered by the
        # source digest; reading them must be effect-free.
        effects = effects_of("repro/workloads/profiles.py", """
            PROFILES = {name: name.upper() for name in ("a", "b")}

            def get_profile(name):
                return PROFILES[name]
        """)
        assert kinds_of(effects, "get_profile") == set()

    def test_declared_cache_pragma_exempts(self):
        effects = effects_of("repro/exec/mod.py", """
            _STORE = None  # mapglint: declared-cache

            def get_store():
                global _STORE
                if _STORE is None:
                    _STORE = object()
                return _STORE
        """)
        assert "_STORE" in effects.declared_caches
        assert kinds_of(effects, "get_store") == set()

    def test_local_shadowing_is_not_a_global_effect(self):
        effects = effects_of("repro/sim/mod.py", """
            _TABLE = {}

            def mutate():
                _TABLE["x"] = 1

            def local_only():
                _TABLE = {}
                _TABLE["x"] = 1
                return _TABLE
        """)
        assert GLOBAL_WRITE in kinds_of(effects, "mutate")
        assert kinds_of(effects, "local_only") == set()

    def test_module_level_env_read_recorded(self):
        effects = effects_of("repro/sim/mod.py", """
            import os

            DEBUG = os.environ.get("DEBUG", "")
        """)
        assert ENV in kinds_of(effects, "<module>")

    def test_class_level_mutable_attr(self):
        effects = effects_of("repro/sim/mod.py", """
            class Thing:
                shared_cache = {}
                limit = 4

                def __init__(self):
                    self.mine = {}
        """)
        (attr,) = effects.class_mutable_attrs
        assert (attr.class_name, attr.attr) == ("Thing", "shared_cache")

    def test_pool_submission_shapes(self):
        effects = effects_of("repro/exec/mod.py", """
            import multiprocessing

            def by_name(pool, items):
                return pool.imap_unordered(work, items)

            def by_lambda(pool, items):
                return pool.map(lambda x: x, items)

            def by_method(self_pool, items):
                return self_pool.apply_async(items.do, (1,))

            def by_process(items):
                multiprocessing.Process(target=work, args=(items,))

            def closure_worker(pool, items):
                def inner(x):
                    return x
                return pool.map(inner, items)
        """)
        named = {sub.worker_name for sub in effects.pool_submissions
                 if sub.worker_kind == "name"}
        assert {"work", "inner"} <= named
        assert any(sub.worker_kind == "lambda" and sub.method == "map"
                   for sub in effects.pool_submissions)
        assert "inner" in effects.nested_functions
        process = [sub for sub in effects.pool_submissions
                   if sub.method == "Process"]
        assert process and process[0].worker_name == "work"

    def test_lambda_and_open_in_args(self):
        effects = effects_of("repro/exec/mod.py", """
            def submit(pool, items):
                pool.map(work, [lambda x: x])
                pool.map(work, open("f"))
        """)
        first, second = effects.pool_submissions
        assert first.lambda_in_args and not first.open_in_args
        assert second.open_in_args and not second.lambda_in_args


class TestEffectPropagation:
    def test_transitive_closure_through_unique_calls(self):
        model = model_of({"repro/exec/mod.py": """
            import time

            def leaf():
                return time.time()

            def middle():
                return leaf()

            def top():
                return middle()
        """})
        propagator = model.effects()
        reached = propagator.transitive("repro/exec/mod.py::top")
        assert {item.effect.kind for item in reached} == {CLOCK}
        (item,) = list(reached)
        chain = propagator.call_path("repro/exec/mod.py::top", item.origin)
        assert format_chain(chain) == "top -> middle -> leaf"

    def test_cycles_reach_fixpoint(self):
        model = model_of({"repro/exec/mod.py": """
            import random

            def ping(n):
                random.random()
                return pong(n - 1)

            def pong(n):
                return ping(n) if n else 0
        """})
        propagator = model.effects()
        for name in ("ping", "pong"):
            kinds = {item.effect.kind for item in
                     propagator.transitive(f"repro/exec/mod.py::{name}")}
            assert kinds == {RNG}

    def test_ambiguous_names_contribute_nothing(self):
        model = model_of({"repro/exec/a.py": """
            import time

            def helper():
                return time.time()
        """, "repro/exec/b.py": """
            def helper():
                return 1
        """, "repro/exec/c.py": """
            def caller():
                return helper()
        """})
        reached = model.effects().transitive("repro/exec/c.py::caller")
        assert reached == frozenset()

    def test_effect_propagator_is_importable_standalone(self):
        model = model_of({"repro/exec/mod.py": "def f():\n    return 1\n"})
        assert isinstance(EffectPropagator(model), EffectPropagator)


class TestCacheSoundnessRule:
    def test_env_read_in_simulator_flagged(self):
        findings = findings_for({"repro/sim/driver.py": """
            import os

            def pick_mode():
                return os.environ.get("MAPG_MODE", "fixed")
        """}, "CACHE01")
        assert findings and all(f.rule_id == "CACHE01" for f in findings)

    def test_mutable_global_accumulator_flagged(self):
        findings = findings_for({"repro/sim/driver.py": """
            _RESULTS = []

            def record(value):
                _RESULTS.append(value)
        """}, "CACHE01")
        assert any("'_RESULTS'" in f.message for f in findings)

    def test_class_level_cache_flagged(self):
        findings = findings_for({"repro/memory/banks.py": """
            class Bank:
                _lookup_cache = {}
        """}, "CACHE01")
        assert any("_lookup_cache" in f.message for f in findings)

    def test_declared_cache_and_import_time_init_pass(self):
        findings = findings_for({"repro/sim/driver.py": """
            _STORE = None  # mapglint: declared-cache
            TABLE = {k: k for k in ("a", "b")}

            def get_store():
                global _STORE
                if _STORE is None:
                    _STORE = object()
                return _STORE

            def lookup(k):
                return TABLE[k]
        """}, "CACHE01")
        assert findings == []

    def test_lint_package_and_tests_out_of_scope(self):
        findings = findings_for({"repro/lint/tool.py": """
            import os

            def flag():
                return os.environ.get("COLOR")
        """, "tests/test_env.py": """
            import os

            def test_env():
                assert os.environ.get("HOME")
        """}, "CACHE01")
        assert findings == []


class TestWorkerPurityRule:
    IMPURE = {"repro/exec/launcher.py": """
        _TOTALS = []

        def _accumulate(item):
            _TOTALS.append(item)
            return item

        def fan_out(pool, items):
            return pool.map(_accumulate, items)
    """}

    def test_global_accumulator_in_worker_flagged(self):
        # append() both reads and mutates _TOTALS: one finding per kind.
        findings = findings_for(self.IMPURE, "PURE01")
        assert findings
        for finding in findings:
            assert finding.rule_id == "PURE01"
            assert "_accumulate" in finding.message
            assert "pool.map" in finding.line_text

    def test_transitive_effect_reported_with_chain(self):
        findings = findings_for({"repro/exec/launcher.py": """
            import time

            def _leaf():
                return time.time()

            def _worker(item):
                return (_leaf(), item)

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """}, "PURE01")
        (finding,) = findings
        assert "_worker -> _leaf" in finding.message
        assert "wall clock" in finding.message

    def test_pure_worker_and_declared_cache_pass(self):
        findings = findings_for({"repro/exec/launcher.py": """
            _STORE = None  # mapglint: declared-cache

            def _worker(item):
                global _STORE
                if _STORE is None:
                    _STORE = {}
                return item * 2

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """}, "PURE01")
        assert findings == []

    def test_ambiguous_worker_name_is_skipped(self):
        findings = findings_for({"repro/exec/a.py": """
            import time

            def work(x):
                return time.time()
        """, "repro/exec/b.py": """
            def work(x):
                return x
        """, "repro/exec/launcher.py": """
            def fan_out(pool, items):
                return pool.map(work, items)
        """}, "PURE01")
        assert findings == []


class TestObsNeutralityRule:
    def test_unguarded_recorder_call_flagged(self):
        findings = findings_for({"repro/sim/mysim.py": """
            class Sim:
                def step(self, recorder):
                    recorder.instant("core0", "tick", 0)
        """}, "OBS01")
        (finding,) = findings
        assert "unguarded" in finding.message

    def test_guarded_emission_passes(self):
        findings = findings_for({"repro/sim/mysim.py": """
            class Sim:
                def step(self):
                    if self._obs.enabled:
                        self._obs.instant("core0", "tick", 0)

                def tiled(self):
                    if self._obs.enabled and self.deep:
                        self._obs.span("core0", "busy", 0, 1)

                def early(self):
                    if not self._obs.enabled:
                        return
                    self._obs.sample("core0", "n", 1)
        """}, "OBS01")
        assert findings == []

    def test_private_helper_with_all_guarded_callers_exempt(self):
        findings = findings_for({"repro/sim/mysim.py": """
            class Sim:
                def _emit(self, event):
                    self._obs.span("core0", "stall", 0, 1)

                def step(self, event):
                    if self._obs.enabled:
                        self._emit(event)
        """}, "OBS01")
        assert findings == []

    def test_private_helper_with_unguarded_caller_flagged(self):
        findings = findings_for({"repro/sim/mysim.py": """
            class Sim:
                def _emit(self, event):
                    self._obs.span("core0", "stall", 0, 1)

                def step(self, event):
                    self._emit(event)
        """}, "OBS01")
        assert any("unguarded" in f.message for f in findings)

    def test_obs_value_into_simulation_state_flagged(self):
        findings = findings_for({"repro/sim/mysim.py": """
            class Sim:
                def step(self):
                    if self._obs.enabled:
                        self.budget = self._obs.sample("core0", "n", 1)
        """}, "OBS01")
        (finding,) = findings
        assert "flow into simulation state" in finding.message

    def test_counter_prebinding_is_allowed_flow(self):
        findings = findings_for({"repro/sim/mysim.py": """
            class Sim:
                def attach(self):
                    if self._obs.enabled:
                        metrics = self._obs.metrics
                        self._m_hits = metrics.counter("sim.hits")
        """}, "OBS01")
        assert findings == []

    def test_non_obs_receivers_untouched(self):
        # Simulation-owned histograms/predictors share method names with
        # the metrics API; the receiver convention must tell them apart.
        findings = findings_for({"repro/sim/mysim.py": """
            class Sim:
                def step(self, cycles):
                    self.stall_histogram.observe(cycles)
                    self.policy.observe(1, 2, cycles, "read")
                    self.counters.add("x", 1.0)
        """}, "OBS01")
        assert findings == []

    def test_repro_obs_itself_out_of_scope(self):
        findings = findings_for({"repro/obs/spans.py": """
            class SpanRecorder:
                def span(self, track, name, start, dur):
                    self.recorder.instant(track, name, start)
        """}, "OBS01")
        assert findings == []


class TestPicklableRule:
    def test_lambda_payload_flagged(self):
        findings = findings_for({"repro/exec/launcher.py": """
            def fan_out(pool, items):
                return pool.map(lambda x: x + 1, items)
        """}, "PAR01")
        (finding,) = findings
        assert "lambda" in finding.message

    def test_bound_method_flagged(self):
        findings = findings_for({"repro/exec/launcher.py": """
            class Runner:
                def fan_out(self, pool, items):
                    return pool.map(self.work, items)
        """}, "PAR01")
        (finding,) = findings
        assert "bound method self.work" in finding.message

    def test_closure_flagged(self):
        findings = findings_for({"repro/exec/launcher.py": """
            def fan_out(pool, items):
                def inner(x):
                    return x
                return pool.map(inner, items)
        """}, "PAR01")
        (finding,) = findings
        assert "closure" in finding.message

    def test_lambda_and_handle_in_args_flagged(self):
        findings = findings_for({"repro/exec/launcher.py": """
            def fan_out(pool, items):
                pool.starmap(work, [(1, lambda x: x)])
                pool.map(work, open("data.txt"))
        """}, "PAR01")
        messages = " | ".join(f.message for f in findings)
        assert "lambda inside the arguments" in messages
        assert "open file handle" in messages

    def test_module_level_worker_passes(self):
        findings = findings_for({"repro/exec/launcher.py": """
            def _worker(item):
                return item

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """}, "PAR01")
        assert findings == []


class TestProjectRuleSuppression:
    SOURCE = {"repro/exec/launcher.py": """
        def fan_out(pool, items):
            return pool.map(lambda x: x, items)  # mapglint: disable=PAR01
    """}

    def test_suppression_honored_via_runner(self):
        assert findings_for(self.SOURCE, "PAR01") == []

    def test_suppression_honored_by_direct_check_project(self):
        # The regression: every invocation path — not just the runner —
        # must filter call-site-anchored project findings identically.
        model = model_of(self.SOURCE)
        for rule_class in all_project_rules():
            assert [f for f in rule_class().check_project(model)
                    if f.rule_id == "PAR01"] == []

    def test_unsuppressed_twin_still_fires(self):
        findings = findings_for({"repro/exec/launcher.py": """
            def fan_out(pool, items):
                return pool.map(lambda x: x, items)
        """}, "PAR01")
        assert len(findings) == 1


class TestEffectSchemaCacheKey:
    def test_effect_schema_bump_invalidates_cache(self, tmp_path,
                                                  monkeypatch):
        module = tmp_path / "repro" / "sim" / "mod.py"
        module.parent.mkdir(parents=True)
        module.write_text("def f(n):\n    return n\n", encoding="utf-8")
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "repro")], cache=ResultCache(cache_dir))

        warm = ResultCache(cache_dir)
        lint_paths([str(tmp_path / "repro")], cache=warm)
        assert warm.hits == 1 and warm.misses == 0

        monkeypatch.setattr(cache_module, "EFFECT_SCHEMA", 999_999)
        monkeypatch.setattr(cache_module, "_ruleset_version", None)
        bumped = ResultCache(cache_dir)
        lint_paths([str(tmp_path / "repro")], cache=bumped)
        assert bumped.misses == 1 and bumped.hits == 0


class TestSeededDefects:
    """Full-pipeline seeded defects, one per rule (UNIT02-pattern)."""

    def _tree(self, tmp_path, rel, body):
        target = tmp_path
        for part in rel.split("/"):
            target = target / part
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
        return target

    def test_seeded_env_read_in_simulator_caught(self, tmp_path):
        self._tree(tmp_path, "repro/sim/driver.py", """
            import os

            def gate_mode():
                return os.environ.get("MAPG_GATE", "fixed")
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["CACHE01"])
        assert any(f.rule_id == "CACHE01" for f in report.findings)

    def test_seeded_global_accumulator_worker_caught(self, tmp_path):
        self._tree(tmp_path, "repro/exec/launcher.py", """
            _SEEN = []

            def _worker(item):
                _SEEN.append(item)
                return item

            def fan_out(pool, items):
                return pool.map(_worker, items)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["PURE01"])
        assert any(f.rule_id == "PURE01" for f in report.findings)

    def test_seeded_unguarded_recorder_call_caught(self, tmp_path):
        self._tree(tmp_path, "repro/sim/mysim.py", """
            class Sim:
                def step(self, recorder):
                    recorder.instant("core0", "tick", 0)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["OBS01"])
        assert any(f.rule_id == "OBS01" for f in report.findings)

    def test_seeded_sweep_telemetry_leak_into_result_caught(self, tmp_path):
        # The PR-8 defect shape: a sweep-telemetry aggregate (cells/sec)
        # read off the recorder and folded into a SimulationResult field.
        # The assignment to a non-obs-named target is the tell.
        self._tree(tmp_path, "repro/exec/myengine.py", """
            class Runner:
                def finish(self, result, recorder):
                    rate = recorder.summary()
                    result.energy_j = result.energy_j + rate["cells_per_sec"]
                    return result
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["OBS01"])
        assert any(f.rule_id == "OBS01" and "rate" in f.message
                   for f in report.findings)

    def test_seeded_unguarded_sweep_lifecycle_emission_caught(self, tmp_path):
        # The sweep lifecycle sinks joined _EMISSION_METHODS in PR 8:
        # an engine emitting cell_cache_hit outside the enabled guard
        # must be flagged like any metrics emission.
        self._tree(tmp_path, "repro/exec/myengine.py", """
            class Runner:
                def probe(self, key, recorder):
                    recorder.cell_cache_hit(key)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["OBS01"])
        assert any(f.rule_id == "OBS01" and "cell_cache_hit" in f.message
                   for f in report.findings)

    def test_seeded_lambda_payload_caught(self, tmp_path):
        self._tree(tmp_path, "repro/exec/launcher.py", """
            def fan_out(pool, items):
                return pool.map(lambda x: x + 1, items)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["PAR01"])
        assert any(f.rule_id == "PAR01" for f in report.findings)
