"""Error-flow extraction, the escaping fixpoint, and ERR01–ERR04/RES01.

Synthetic modules live under ``repro/...`` paths (a tmp-dir ``repro``
tree is *not* a test path), mirroring test_lint_conc.py; the seeded
defects in :class:`TestSeededDefects` drive each rule through the full
``lint_paths`` pipeline and assert the raise-to-boundary chain survives
to the finding text.
"""

import ast
import textwrap

from repro.lint.base import parse_suppressions
from repro.lint.project import ProjectModel, extract_summary
from repro.lint.project.effects import (
    extract_module_effects, parse_error_boundaries)
from repro.lint.runner import lint_paths, run_project_rules


def summarize(path, source):
    source = textwrap.dedent(source)
    return extract_summary(path, source, ast.parse(source),
                           parse_suppressions(source))


def effects_of(path, source):
    source = textwrap.dedent(source)
    return extract_module_effects(path, source, ast.parse(source))


def findings_for(modules, rule_id):
    summaries = [summarize(path, src) for path, src in modules.items()]
    return run_project_rules(summaries, rule_ids=[rule_id])


def model_of(modules):
    return ProjectModel(
        [summarize(path, src) for path, src in modules.items()])


class TestErrorFlowExtraction:
    def test_raise_sites_typed_and_located(self):
        effects = effects_of("repro/stats/x.py", """
            def check(v):
                if v < 0:
                    raise ValueError("negative")
                raise errors.StatsError("odd")
        """)
        sites = {(s.exc_type, s.in_function.split("::")[-1], s.is_reraise)
                 for s in effects.raise_sites}
        assert ("ValueError", "check", False) in sites
        assert ("StatsError", "check", False) in sites  # dotted last segment

    def test_unknowable_raise_contributes_nothing(self):
        effects = effects_of("repro/stats/x.py", """
            def rethrow(err):
                raise err
        """)
        assert effects.raise_sites == ()

    def test_bare_reraise_recorded_as_reraise(self):
        effects = effects_of("repro/stats/x.py", """
            def f():
                try:
                    g()
                except ValueError:
                    raise
        """)
        (site,) = effects.raise_sites
        assert site.is_reraise and site.in_handler

    def test_handler_span_and_classification(self):
        effects = effects_of("repro/obs/x.py", """
            def f(handle):
                try:
                    data = handle.read()
                except (OSError, ValueError) as exc:
                    print("unreadable:", exc)
                    return None
                except Exception:
                    raise RuntimeError("wrapped")
                return data
        """)
        first, second = effects.handlers
        assert first.caught == ("OSError", "ValueError")
        assert first.logs and first.returns
        assert not first.reraises and not first.raises_new
        assert second.caught == ("Exception",) and second.raises_new
        assert first.try_start == second.try_start
        (span,) = effects.protected_spans
        assert span.has_handlers and not span.has_finally

    def test_bare_and_unnameable_handlers(self):
        effects = effects_of("repro/obs/x.py", """
            def f(kinds):
                try:
                    g()
                except:
                    pass

            def h(kinds):
                try:
                    g()
                except kinds[0]:
                    pass
        """)
        bare, unnameable = effects.handlers
        assert bare.is_bare
        assert unnameable.caught == ("*",)  # treated as a catch-all

    def test_exception_classes_with_base_spellings(self):
        effects = effects_of("repro/errors.py", """
            class ReproError(Exception):
                pass

            class StatsError(ReproError, ValueError):
                pass
        """)
        classes = {c.name: c.bases for c in effects.exception_classes}
        assert classes["ReproError"] == ("Exception",)
        assert classes["StatsError"] == ("ReproError", "ValueError")

    def test_error_boundary_pragma_binds_to_definition(self):
        source = textwrap.dedent("""
            class Cache:
                def load(self, key):  # mapglint: error-boundary
                    return None

                def store(self, key):
                    return None
        """)
        assert parse_error_boundaries(source) == {3}
        effects = effects_of("repro/exec/c.py", source)
        assert effects.error_boundaries == frozenset({
            "repro/exec/c.py::Cache.load"})

    def test_resource_sites_with_and_named(self):
        effects = effects_of("repro/obs/x.py", """
            def fine(path):
                with open(path) as handle:
                    return handle.read()

            def leak(path):
                handle = open(path)
                data = handle.read()
                return data

            def managed(path):
                handle = open(path)
                try:
                    return handle.read()
                finally:
                    handle.close()
        """)
        by_func = {site.in_function.split("::")[-1]: site
                   for site in effects.resource_sites}
        assert by_func["fine"].in_with
        assert not by_func["leak"].closed and not by_func["leak"].escapes
        assert by_func["managed"].closed
        assert by_func["managed"].close_in_finally

    def test_escaping_handles_are_not_local(self):
        effects = effects_of("repro/obs/x.py", """
            class Log:
                def open_stream(self, path):
                    self._stream = open(path, "a")

            def handoff(path):
                handle = open(path)
                register(handle)
        """)
        assert all(site.escapes for site in effects.resource_sites)


class TestEscapingFixpoint:
    def test_escape_propagates_through_the_chain(self):
        model = model_of({"repro/sim/x.py": """
            def outer():
                return _mid()

            def _mid():
                return _inner()

            def _inner():
                raise ValueError("boom")
        """})
        flow = model.errflow()
        escapes = {(e.exc_type, e.origin.split("::")[-1])
                   for e in flow.escaping("repro/sim/x.py::outer")}
        assert escapes == {("ValueError", "_inner")}
        chain = flow.chain(
            "repro/sim/x.py::outer",
            next(iter(flow.escaping("repro/sim/x.py::outer"))))
        assert [q.split("::")[-1] for q in chain] == \
            ["outer", "_mid", "_inner"]

    def test_matching_handler_absorbs_at_the_call_site(self):
        model = model_of({"repro/sim/x.py": """
            def outer():
                try:
                    return _inner()
                except ValueError:
                    return None

            def _inner():
                raise ValueError("boom")
        """})
        flow = model.errflow()
        assert flow.escaping("repro/sim/x.py::outer") == frozenset()

    def test_subtype_is_caught_by_base_class_handler(self):
        model = model_of({"repro/errors.py": """
            class ReproError(Exception):
                pass

            class ConfigError(ReproError):
                pass
        """, "repro/sim/x.py": """
            def outer():
                try:
                    return _inner()
                except ReproError:
                    return None

            def _inner():
                raise ConfigError("bad knob")
        """})
        flow = model.errflow()
        assert flow.escaping("repro/sim/x.py::outer") == frozenset()

    def test_bare_reraise_keeps_the_exception_escaping(self):
        model = model_of({"repro/sim/x.py": """
            def outer():
                try:
                    return _inner()
                except ValueError:
                    raise

            def _inner():
                raise ValueError("boom")
        """})
        flow = model.errflow()
        escapes = {e.exc_type
                   for e in flow.escaping("repro/sim/x.py::outer")}
        assert escapes == {"ValueError"}

    def test_recursion_reaches_a_fixpoint(self):
        model = model_of({"repro/sim/x.py": """
            def _even(n):
                if n < 0:
                    raise ValueError("negative")
                return _odd(n - 1)

            def _odd(n):
                return _even(n - 1)
        """})
        flow = model.errflow()
        for name in ("_even", "_odd"):
            escapes = {e.exc_type
                       for e in flow.escaping(f"repro/sim/x.py::{name}")}
            assert escapes == {"ValueError"}


class TestBoundaryEscape:
    POOL = """
        def fan_out(pool, items):
            return pool.map(_cell, items)

        def _cell(item):
            return _simulate(item)

        def _simulate(item):
            if item < 0:
                raise ValueError("negative cell")
            return item
    """

    def test_pool_worker_escape_fires_with_chain(self):
        findings = findings_for(
            {"repro/exec/launcher.py": self.POOL}, "ERR01")
        (finding,) = findings
        assert "ValueError" in finding.message
        assert "_cell -> _simulate" in finding.message
        assert "error-boundary" in finding.message

    def test_declared_boundary_is_silent(self):
        findings = findings_for({"repro/exec/launcher.py": """
            def fan_out(pool, items):
                return pool.map(_cell, items)

            def _cell(item):  # mapglint: error-boundary
                try:
                    return _simulate(item)
                except Exception as exc:
                    return {"error": str(exc)}

            def _simulate(item):
                if item < 0:
                    raise ValueError("negative cell")
                return item
        """}, "ERR01")
        assert findings == []

    def test_cli_main_escape_fires(self):
        findings = findings_for({"repro/cli.py": """
            def main(argv=None):
                return _dispatch(argv)

            def _dispatch(argv):
                if not argv:
                    raise ValueError("no command")
        """}, "ERR01")
        (finding,) = findings
        assert "CLI entry point" in finding.message

    def test_cache_load_escape_fires(self):
        findings = findings_for({"repro/exec/rcache.py": """
            class ResultCache:
                def load(self, key):
                    return _decode(key)

            def _decode(key):
                raise ValueError("corrupt entry")
        """}, "ERR01")
        (finding,) = findings
        assert "cache path" in finding.message
        assert "miss" in finding.message


class TestHandlerHygiene:
    def test_bare_except_fires(self):
        findings = findings_for({"repro/obs/x.py": """
            def f():
                try:
                    g()
                except:
                    pass
        """}, "ERR02")
        (finding,) = findings
        assert "KeyboardInterrupt" in finding.message

    def test_broad_silent_swallow_fires(self):
        findings = findings_for({"repro/obs/x.py": """
            def f():
                try:
                    return g()
                except Exception:
                    return None
        """}, "ERR02")
        (finding,) = findings
        assert "silence" in finding.message

    def test_logged_swallow_is_silent(self):
        findings = findings_for({"repro/obs/x.py": """
            def f():
                try:
                    return g()
                except Exception as exc:
                    print("g failed:", exc)
                    return None
        """}, "ERR02")
        assert findings == []

    def test_boundary_function_may_swallow(self):
        findings = findings_for({"repro/obs/x.py": """
            def f():  # mapglint: error-boundary
                try:
                    return g()
                except Exception:
                    return None
        """}, "ERR02")
        assert findings == []

    def test_imprecise_repro_error_catch_fires(self):
        findings = findings_for({"repro/errors.py": """
            class ReproError(Exception):
                pass

            class ConfigError(ReproError):
                pass
        """, "repro/sim/x.py": """
            def run():
                try:
                    return _load()
                except ReproError:
                    raise SystemExit(1)

            def _load():
                raise ConfigError("bad knob")
        """}, "ERR02")
        (finding,) = findings
        assert "ConfigError" in finding.message

    def test_precise_catch_is_silent(self):
        findings = findings_for({"repro/errors.py": """
            class ReproError(Exception):
                pass

            class ConfigError(ReproError):
                pass
        """, "repro/sim/x.py": """
            def run():
                try:
                    return _load()
                except ConfigError:
                    raise SystemExit(1)

            def _load():
                raise ConfigError("bad knob")
        """}, "ERR02")
        assert findings == []


class TestExceptionUnsafeMutation:
    def test_mutate_then_raising_call_fires(self):
        findings = findings_for({"repro/obs/x.py": """
            _REGISTRY = {}

            def register(name, value):
                _REGISTRY[name] = value
                _validate(value)

            def _validate(value):
                if not value:
                    raise ValueError("empty")
        """}, "ERR03")
        (finding,) = findings
        assert "_REGISTRY" in finding.message or \
            "_REGISTRY" in finding.line_text
        assert "_validate" in finding.message
        assert "ValueError" in finding.message

    def test_validate_before_mutate_is_silent(self):
        findings = findings_for({"repro/obs/x.py": """
            _REGISTRY = {}

            def register(name, value):
                _validate(value)
                _REGISTRY[name] = value

            def _validate(value):
                if not value:
                    raise ValueError("empty")
        """}, "ERR03")
        assert findings == []

    def test_protected_mutation_is_trusted(self):
        findings = findings_for({"repro/obs/x.py": """
            _REGISTRY = {}

            def register(name, value):
                try:
                    _REGISTRY[name] = value
                    _validate(value)
                finally:
                    _REGISTRY.pop(name, None)

            def _validate(value):
                if not value:
                    raise ValueError("empty")
        """}, "ERR03")
        assert findings == []

    def test_absorbed_escape_is_silent(self):
        findings = findings_for({"repro/obs/x.py": """
            _REGISTRY = {}

            def register(name, value):
                _REGISTRY[name] = value
                try:
                    _validate(value)
                except ValueError:
                    print("rejected", name)

            def _validate(value):
                if not value:
                    raise ValueError("empty")
        """}, "ERR03")
        assert findings == []


class TestHierarchyDiscipline:
    def test_public_bare_builtin_raise_fires(self):
        findings = findings_for({"repro/stats/x.py": """
            def percentile(values, p):
                if not 0 <= p <= 100:
                    raise ValueError("p out of range")
        """}, "ERR04")
        (finding,) = findings
        assert "ReproError" in finding.message

    def test_reachable_from_public_names_the_root(self):
        findings = findings_for({"repro/stats/x.py": """
            def summary(values):
                return _check(values)

            def _check(values):
                if not values:
                    raise ValueError("empty")
        """}, "ERR04")
        (finding,) = findings
        assert "reachable from public 'summary'" in finding.message

    def test_unreachable_private_is_silent(self):
        findings = findings_for({"repro/stats/x.py": """
            def _orphan(values):
                raise ValueError("never called")
        """}, "ERR04")
        assert findings == []

    def test_repro_error_subclass_is_silent(self):
        findings = findings_for({"repro/errors.py": """
            class ReproError(Exception):
                pass

            class StatsError(ReproError, ValueError):
                pass
        """, "repro/stats/x.py": """
            def percentile(values, p):
                if not 0 <= p <= 100:
                    raise StatsError("p out of range")
        """}, "ERR04")
        assert findings == []

    def test_per_line_disable_suppresses(self):
        findings = findings_for({"repro/stats/x.py": """
            def percentile(values, p):
                if not 0 <= p <= 100:
                    raise ValueError("p")  # mapglint: disable=ERR04
        """}, "ERR04")
        assert findings == []

    def test_lint_package_is_out_of_scope(self):
        findings = findings_for({"repro/lint/rules/x.py": """
            def check(node):
                raise ValueError("mapglint internal")
        """}, "ERR04")
        assert findings == []


class TestResourceLifecycle:
    def test_never_closed_handle_fires(self):
        findings = findings_for({"repro/obs/x.py": """
            def leak(path):
                handle = open(path)
                data = handle.read()
                return data
        """}, "RES01")
        (finding,) = findings
        assert "never released" in finding.message
        assert "file descriptor" in finding.message

    def test_with_block_is_silent(self):
        findings = findings_for({"repro/obs/x.py": """
            def fine(path):
                with open(path) as handle:
                    return handle.read()
        """}, "RES01")
        assert findings == []

    def test_happy_path_close_with_raising_call_fires(self):
        findings = findings_for({"repro/obs/x.py": """
            def export(path, payload):
                handle = open(path, "w")
                _encode(payload)
                handle.close()

            def _encode(payload):
                if not payload:
                    raise ValueError("empty payload")
        """}, "RES01")
        (finding,) = findings
        assert "happy path" in finding.message
        assert "ValueError" in finding.message
        assert "finally" in finding.message

    def test_close_in_finally_is_silent(self):
        findings = findings_for({"repro/obs/x.py": """
            def export(path, payload):
                handle = open(path, "w")
                try:
                    _encode(payload)
                finally:
                    handle.close()

            def _encode(payload):
                if not payload:
                    raise ValueError("empty payload")
        """}, "RES01")
        assert findings == []

    def test_escaping_handle_is_not_this_rules_problem(self):
        findings = findings_for({"repro/obs/x.py": """
            class Log:
                def open_stream(self, path):
                    self._stream = open(path, "a")
        """}, "RES01")
        assert findings == []

    def test_unterminated_pool_fires(self):
        findings = findings_for({"repro/exec/x.py": """
            def sweep(context, items):
                pool = context.Pool(4)
                out = pool.map(_cell, items)
                return out

            def _cell(item):
                return item
        """}, "RES01")
        assert any("worker processes" in f.message for f in findings)


class TestSeededDefects:
    """Full-pipeline seeded defects, one per ERR/RES rule."""

    def _tree(self, tmp_path, rel, body):
        target = tmp_path
        for part in rel.split("/"):
            target = target / part
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
        return target

    def test_seeded_worker_escape_caught(self, tmp_path):
        self._tree(tmp_path, "repro/exec/launcher.py", """
            def fan_out(pool, items):
                return pool.map(_cell, items)

            def _cell(item):
                return _simulate(item)
        """)
        self._tree(tmp_path, "repro/sim/model.py", """
            def _simulate(item):
                if item < 0:
                    raise ValueError("negative cell")
                return item
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["ERR01"])
        (finding,) = report.findings
        assert finding.rule_id == "ERR01"
        # The raise-to-boundary chain crosses the module boundary.
        assert "_cell -> _simulate" in finding.message
        assert "model.py" in finding.message

    def test_seeded_silent_swallow_caught(self, tmp_path):
        self._tree(tmp_path, "repro/obs/reader.py", """
            def read_report(path):
                try:
                    with open(path) as handle:
                        return handle.read()
                except Exception:
                    return ""
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["ERR02"])
        (finding,) = report.findings
        assert finding.rule_id == "ERR02"
        assert "silence" in finding.message

    def test_seeded_unsafe_mutation_caught(self, tmp_path):
        self._tree(tmp_path, "repro/obs/registry.py", """
            _REGISTRY = {}

            def register(name, value):
                _REGISTRY[name] = value
                _validate(value)

            def _validate(value):
                if not value:
                    raise ValueError("empty")
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["ERR03"])
        (finding,) = report.findings
        assert finding.rule_id == "ERR03"
        assert "_validate" in finding.message

    def test_seeded_bare_builtin_raise_caught(self, tmp_path):
        self._tree(tmp_path, "repro/stats/quantile.py", """
            def percentile(values, p):
                if not 0 <= p <= 100:
                    raise ValueError("p out of range")
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["ERR04"])
        (finding,) = report.findings
        assert finding.rule_id == "ERR04"
        assert "ReproError subclass" in finding.message

    def test_seeded_leaked_handle_caught(self, tmp_path):
        self._tree(tmp_path, "repro/obs/exporter.py", """
            def export(path, payload):
                handle = open(path, "w")
                handle.write(payload)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["RES01"])
        (finding,) = report.findings
        assert finding.rule_id == "RES01"
        assert "never released" in finding.message
