"""``--explain RULE``: per-rule documentation with bad/good examples."""

import pytest

from repro.lint.base import all_rule_ids
from repro.lint.cli import main as lint_main
from repro.lint.explain import _EXAMPLES, explain_rule


class TestExplainRule:
    def test_every_registered_rule_has_an_example(self):
        assert set(_EXAMPLES) == set(all_rule_ids())

    @pytest.mark.parametrize("rule_id", all_rule_ids())
    def test_explanation_is_complete(self, rule_id):
        text = explain_rule(rule_id)
        assert text.startswith(rule_id)
        assert "bad:" in text and "good:" in text
        # The prose comes from the rule's own doc, not just the summary.
        assert len(text.splitlines()) > 8

    def test_lookup_is_case_insensitive(self):
        assert explain_rule("cache01") == explain_rule("CACHE01")

    def test_unknown_rule_raises_with_inventory(self):
        with pytest.raises(KeyError, match="CACHE01"):
            explain_rule("NOPE01")


class TestExplainCli:
    def test_explain_prints_and_exits_zero(self, capsys):
        assert lint_main(["--explain", "PAR01"]) == 0
        out = capsys.readouterr().out
        assert "PAR01" in out and "lambda" in out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert lint_main(["--explain", "NOPE01"]) == 2
        assert "unknown rule" in capsys.readouterr().err
