"""mapglint coverage of ``repro/fastsim`` — the batched kernel's scope.

The fast kernel's whole contract is bit-identity with the oracle, so the
determinism/unit/observability rules must police it exactly as they do
the simulator proper.  Each extended rule gets one seeded defect placed
at a ``repro/fastsim`` path that the rule must flag, one equivalent
clean snippet it must pass, and the real package is linted end to end.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import lint_paths, run_project_rules
from repro.lint.base import parse_suppressions
from repro.lint.project import extract_summary
from repro.lint.runner import lint_source

FASTSIM_SRC = Path(__file__).resolve().parent.parent / "src/repro/fastsim"


def run_lint(source, path="src/repro/fastsim/kernel.py", rules=None):
    return lint_source(path, textwrap.dedent(source), rule_ids=rules)


def findings_for(modules, rule_id):
    summaries = []
    for path, source in modules.items():
        source = textwrap.dedent(source)
        summaries.append(extract_summary(path, source, ast.parse(source),
                                         parse_suppressions(source)))
    return run_project_rules(summaries, rule_ids=[rule_id])


class TestDet01CoversFastsim:
    def test_wall_clock_read_in_kernel_flagged(self):
        findings = run_lint("""
            import time

            def replay(trace):
                started = time.perf_counter()
                return started
        """, rules=["DET01"])
        assert [f.rule_id for f in findings] == ["DET01"]

    def test_set_iteration_in_kernel_flagged(self):
        findings = run_lint("""
            def drain(pending):
                for line in set(pending):
                    yield line
        """, rules=["DET01"])
        assert [f.rule_id for f in findings] == ["DET01"]

    def test_sorted_iteration_passes(self):
        findings = run_lint("""
            def drain(pending):
                for line in sorted(pending):
                    yield line
        """, rules=["DET01"])
        assert findings == []


class TestUnit02CoversFastsim:
    LIB = """
        def wake_penalty(t_access_s):
            return t_access_s * 2.0
    """

    def test_dimension_mismatch_at_kernel_call_site_flagged(self):
        findings = findings_for({
            "repro/power/lib.py": self.LIB,
            "repro/fastsim/kernel.py": """
                def charge(stall_cycles):
                    return wake_penalty(stall_cycles)
            """,
        }, "UNIT02")
        (finding,) = findings
        assert finding.rule_id == "UNIT02"
        assert finding.path == "repro/fastsim/kernel.py"

    def test_matching_dimension_passes(self):
        findings = findings_for({
            "repro/power/lib.py": self.LIB,
            "repro/fastsim/kernel.py": """
                def charge(stall_s):
                    return wake_penalty(stall_s)
            """,
        }, "UNIT02")
        assert findings == []


class TestObs01CoversFastsim:
    def test_unguarded_emission_in_kernel_flagged(self):
        findings = findings_for({"repro/fastsim/kernel.py": """
            class FastSim:
                def flush(self, recorder):
                    recorder.instant("core0", "batch", 0)
        """}, "OBS01")
        (finding,) = findings
        assert "unguarded" in finding.message

    def test_guarded_emission_passes(self):
        findings = findings_for({"repro/fastsim/kernel.py": """
            class FastSim:
                def flush(self):
                    if self._obs.enabled:
                        self._obs.instant("core0", "batch", 0)
        """}, "OBS01")
        assert findings == []


class TestRealPackageIsClean:
    def test_fastsim_lints_clean(self):
        report = lint_paths([str(FASTSIM_SRC)])
        assert report.findings == []
