"""The ``--fix`` autofixer: rewrites, import insertion, and idempotency."""

import textwrap

from repro.lint import fix_source, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.fixes import fix_files


def dedent(text):
    return textwrap.dedent(text)


class TestFloatEqualityFix:
    PATH = "repro/power/mod.py"

    def test_eq_becomes_isclose_with_import(self):
        source = dedent("""\
            def same(a_j, b_j):
                return a_j == b_j
        """)
        fixed, count = fix_source(self.PATH, source)
        assert count == 1
        assert "math.isclose(a_j, b_j)" in fixed
        assert fixed.startswith("import math\n")

    def test_noteq_becomes_not_isclose(self):
        source = dedent("""\
            import math

            def differ(a_j, b_j):
                return a_j != b_j
        """)
        fixed, count = fix_source(self.PATH, source)
        assert count == 1
        assert "not math.isclose(a_j, b_j)" in fixed
        assert fixed.count("import math") == 1

    def test_out_of_scope_files_untouched(self):
        source = "def same(a_j, b_j):\n    return a_j == b_j\n"
        fixed, count = fix_source("repro/trace/mod.py", source)
        assert count == 0
        assert fixed == source

    def test_int_comparisons_untouched(self):
        source = "def same(n_cycles, m_cycles):\n" \
                 "    return n_cycles == m_cycles\n"
        _, count = fix_source(self.PATH, source)
        assert count == 0


class TestScaleLiteralFix:
    PATH = "repro/sim/mod.py"

    def test_operand_suffix_picks_the_constant(self):
        source = dedent("""\
            def convert(total_ns):
                return total_ns * 1e-9
        """)
        fixed, count = fix_source(self.PATH, source)
        assert count == 1
        assert "total_ns * NS" in fixed
        assert "from repro.units import NS" in fixed

    def test_target_suffix_resolves_ambiguity(self):
        source = dedent("""\
            def convert(raw):
                energy_j = raw * 1e-9
                return energy_j
        """)
        fixed, count = fix_source(self.PATH, source)
        assert count == 1
        assert "raw * NJ" in fixed

    def test_unambiguous_frequency_scale(self):
        source = dedent("""\
            def freq(mult):
                return mult * 1e9
        """)
        fixed, count = fix_source(self.PATH, source)
        assert count == 1
        assert "mult * GHZ" in fixed

    def test_unprovable_literal_left_alone(self):
        source = dedent("""\
            def convert(raw):
                return raw * 1e-9
        """)
        fixed, count = fix_source(self.PATH, source)
        assert count == 0
        assert fixed == source

    def test_existing_units_import_extended(self):
        source = dedent("""\
            from repro.units import MS

            def convert(total_ns):
                return total_ns * 1e-9
        """)
        fixed, count = fix_source(self.PATH, source)
        assert count == 1
        assert "from repro.units import MS, NS" in fixed


class TestIdempotencyAndCli:
    def test_fix_twice_is_a_fixpoint(self):
        source = dedent("""\
            def mixed(a_j, b_j, total_ns):
                scaled = total_ns * 1e-9
                return a_j == b_j
        """)
        once, count_once = fix_source("repro/power/mod.py", source)
        twice, count_twice = fix_source("repro/power/mod.py", once)
        assert count_once == 2
        assert count_twice == 0
        assert twice == once

    def test_fixed_tree_lints_clean(self, tmp_path):
        module = tmp_path / "repro" / "power" / "mod.py"
        module.parent.mkdir(parents=True)
        module.write_text(dedent("""\
            def same(a_j, b_j, total_ns):
                scaled_s = total_ns * 1e-9
                return a_j == b_j
        """), encoding="utf-8")
        before = lint_paths([str(tmp_path)], rule_ids=["FLT01", "UNIT01"])
        assert not before.ok
        changed = fix_files([str(module)])
        assert changed == {str(module).replace("\\", "/"): 2}
        after = lint_paths([str(tmp_path)], rule_ids=["FLT01", "UNIT01"])
        assert after.ok, [f.message for f in after.all_findings]

    def test_cli_fix_flag(self, tmp_path, capsys):
        module = tmp_path / "repro" / "power" / "mod.py"
        module.parent.mkdir(parents=True)
        module.write_text("def same(a_j, b_j):\n    return a_j == b_j\n",
                          encoding="utf-8")
        exit_code = lint_main([str(tmp_path), "--fix", "--no-cache"])
        output = capsys.readouterr().out
        assert "--fix applied 1 edit(s)" in output
        assert exit_code == 0
        assert "math.isclose" in module.read_text(encoding="utf-8")

    def test_syntax_error_files_skipped(self, tmp_path):
        module = tmp_path / "broken.py"
        module.write_text("def oops(:\n", encoding="utf-8")
        assert fix_files([str(module)]) == {}
