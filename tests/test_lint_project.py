"""The whole-program analyzer: summaries, call graph, inference, and rules.

Synthetic modules are laid out under ``repro/...`` paths (a tmp-dir
``repro`` tree is *not* a test path — only ``tests``/``test`` directory
components and ``test_*.py`` filenames are), which is how these tests get
the project rules to treat them as source.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import lint_paths, run_project_rules
from repro.lint.base import parse_suppressions
from repro.lint.project import (
    CYCLES, HERTZ, JOULES, NUM, SECONDS, UNKNOWN, WATTS,
    FunctionAnalyzer, ProjectModel, extract_summary, is_test_path)


def summarize(path, source):
    source = textwrap.dedent(source)
    return extract_summary(path, source, ast.parse(source),
                           parse_suppressions(source))


def model_of(modules):
    return ProjectModel([summarize(path, src) for path, src in modules.items()])


def findings_for(modules, rule_id):
    summaries = [summarize(path, src) for path, src in modules.items()]
    return run_project_rules(summaries, rule_ids=[rule_id])


def analyze(source):
    tree = ast.parse(textwrap.dedent(source))
    return FunctionAnalyzer().analyze(tree.body[0])


class TestTestPathDetection:
    def test_tests_directory_and_filenames(self):
        assert is_test_path("tests/test_foo.py")
        assert is_test_path("pkg/test/helper.py")
        assert is_test_path("pkg/test_helper.py")
        assert is_test_path("pkg/helper_test.py")

    def test_tmp_repro_tree_is_source(self):
        # pytest tmp dirs contain the test's *name* as a component, which
        # must not trip the exemption — seeded-bug regressions depend on it.
        assert not is_test_path(
            "/tmp/pytest-of-x/pytest-0/test_seeded0/repro/sim/driver.py")


class TestSummaryExtraction:
    def test_function_signature_dimensions(self):
        summary = summarize("repro/sim/mod.py", """
            def wake(latency_cycles, t_access_s, plain):
                return latency_cycles
        """)
        (func,) = summary.functions
        assert func.params == (("latency_cycles", CYCLES),
                               ("t_access_s", SECONDS),
                               ("plain", UNKNOWN))
        assert func.return_dim == CYCLES
        assert not func.is_method

    def test_method_drops_self_and_records_calls(self):
        summary = summarize("repro/sim/mod.py", """
            class Gate:
                def decide(self, stall_cycles):
                    self.ledger.add_event(stall_cycles)
        """)
        (method,) = summary.functions
        assert method.is_method
        assert method.params == (("stall_cycles", CYCLES),)
        (call,) = method.calls
        assert call.name == "add_event"
        assert call.receiver == "self.ledger"
        assert call.arg_dims == (CYCLES,)

    def test_dataclass_fields_and_post_init_validation(self):
        summary = summarize("repro/config.py", """
            from dataclasses import dataclass
            from typing import ClassVar

            @dataclass(frozen=True)
            class Knobs:
                depth: int = 4
                scale: float = 1.0
                label: ClassVar[str] = "x"

                def __post_init__(self):
                    if self.depth < 1:
                        raise ValueError("depth")
        """)
        (info,) = summary.dataclasses
        assert [f.name for f in info.fields] == ["depth", "scale"]
        assert info.has_post_init
        assert "depth" in info.validated
        assert "scale" not in info.validated

    def test_attr_reads_exclude_post_init_but_count_getattr(self):
        summary = summarize("repro/config.py", """
            from dataclasses import dataclass

            @dataclass
            class Cfg:
                depth: int = 1

                def __post_init__(self):
                    assert self.depth >= 1

            def use(cfg):
                return getattr(cfg, "width")
        """)
        assert "width" in summary.attr_reads
        assert "depth" not in summary.attr_reads

    def test_attr_writes_unwrap_subscripts(self):
        summary = summarize("repro/sim/mod.py", """
            def bump(ledger, state, n_cycles):
                ledger._state_cycles[state] += n_cycles
        """)
        (write,) = summary.attr_writes
        assert write.name == "_state_cycles"
        assert write.receiver == "ledger"

    def test_module_level_calls_recorded(self):
        summary = summarize("repro/sim/mod.py", """
            import math
            limit_s = math.sqrt(4.0)
        """)
        pseudo = [f for f in summary.functions if f.name == "<module>"]
        assert pseudo and pseudo[0].calls[0].name == "sqrt"


class TestProjectModel:
    def test_agreement_across_same_named_definitions(self):
        model = model_of({
            "repro/a.py": """
                def cost(t_access_s):
                    return t_access_s
            """,
            "repro/b.py": """
                def cost(t_access_s):
                    return t_access_s * 2.0
            """,
        })
        assert model.agreed_param_dim("cost", 0) == ("t_access_s", SECONDS)

    def test_disagreement_means_unresolvable(self):
        model = model_of({
            "repro/a.py": "def cost(t_access_s):\n    return t_access_s\n",
            "repro/b.py": "def cost(n_cycles):\n    return n_cycles\n",
        })
        assert model.agreed_param_dim("cost", 0) is None

    def test_generic_names_never_resolve(self):
        model = model_of({
            "repro/a.py": "def get(x_cycles):\n    return x_cycles\n",
        })
        assert model.resolve("get") == []

    def test_test_definitions_do_not_pollute_the_symbol_table(self):
        model = model_of({
            "tests/test_a.py": "def cost(n_cycles):\n    return n_cycles\n",
            "repro/b.py": "def cost(t_s):\n    return t_s\n",
        })
        assert model.agreed_param_dim("cost", 0) == ("t_s", SECONDS)

    def test_call_graph_edges(self):
        model = model_of({
            "repro/a.py": """
                def leaf(n_cycles):
                    return n_cycles

                def caller(m_cycles):
                    return leaf(m_cycles)
            """,
        })
        edges = model.call_graph()
        assert edges["repro/a.py::caller"] == {"repro/a.py::leaf"}


class TestDimensionInference:
    def test_physical_arithmetic(self):
        _, dim = analyze("""
            def f(power_w, dt_s):
                return power_w * dt_s
        """)
        assert dim == JOULES
        _, dim = analyze("""
            def f(energy_j, dt_s):
                return energy_j / dt_s
        """)
        assert dim == WATTS
        _, dim = analyze("""
            def f(n_cycles, freq_hz):
                return n_cycles / freq_hz
        """)
        assert dim == SECONDS
        _, dim = analyze("""
            def f(dt_s, freq_hz):
                return dt_s * freq_hz
        """)
        assert dim == CYCLES

    def test_dimensionless_is_transparent(self):
        _, dim = analyze("""
            def f(energy_j):
                return energy_j * 2
        """)
        assert dim == JOULES

    def test_units_helpers_and_constants(self):
        _, dim = analyze("""
            def f(dt_s, freq_hz):
                return seconds_to_cycles_ceil(dt_s, freq_hz)
        """)
        assert dim == CYCLES
        _, dim = analyze("""
            def f():
                t = 13.75 * NS
                return t
        """)
        assert dim == SECONDS

    def test_branch_join(self):
        _, dim = analyze("""
            def f(flag, a_s, b_s, c_j):
                if flag:
                    x = a_s
                else:
                    x = b_s
                return x
        """)
        assert dim == SECONDS
        _, dim = analyze("""
            def f(flag, a_s, c_j):
                return a_s if flag else c_j
        """)
        assert dim == UNKNOWN

    def test_target_suffix_seeds_when_inference_is_blind(self):
        _, dim = analyze("""
            def f(v):
                leak_w = v * 0.1
                return leak_w
        """)
        assert dim == WATTS

    def test_range_loop_variable_is_dimensionless(self):
        analyzer = FunctionAnalyzer()
        tree = ast.parse(textwrap.dedent("""
            def f(n):
                for i in range(n):
                    pass
        """))
        analyzer.analyze(tree.body[0])
        assert analyzer.env["i"] == NUM

    def test_hertz_from_reciprocal_seconds(self):
        _, dim = analyze("""
            def f(cycle_time_s):
                return 1.0 / cycle_time_s
        """)
        assert dim == HERTZ


class TestUnit02:
    LIB = """
        def wake_penalty(t_access_s):
            return t_access_s * 2.0
    """

    def test_fires_on_positional_mismatch(self):
        findings = findings_for({
            "repro/power/lib.py": self.LIB,
            "repro/sim/use.py": """
                def drive(latency_cycles):
                    return wake_penalty(latency_cycles)
            """,
        }, "UNIT02")
        (finding,) = findings
        assert finding.rule_id == "UNIT02"
        assert "t_access_s" in finding.message
        assert finding.path == "repro/sim/use.py"

    def test_fires_on_keyword_mismatch(self):
        findings = findings_for({
            "repro/power/lib.py": self.LIB,
            "repro/sim/use.py": """
                def drive(latency_cycles):
                    return wake_penalty(t_access_s=latency_cycles)
            """,
        }, "UNIT02")
        assert len(findings) == 1

    def test_fires_on_return_use_mismatch(self):
        findings = findings_for({
            "repro/power/lib.py": """
                def leakage_power(v):
                    leak_w = v * 0.1
                    return leak_w
            """,
            "repro/sim/use.py": """
                def drive():
                    total_j = leakage_power(1.0)
                    return total_j
            """,
        }, "UNIT02")
        (finding,) = findings
        assert "'w'" in finding.message and "'j'" in finding.message

    def test_silent_on_unknown_dimension(self):
        findings = findings_for({
            "repro/power/lib.py": self.LIB,
            "repro/sim/use.py": """
                def drive(value):
                    return wake_penalty(value)
            """,
        }, "UNIT02")
        assert findings == []

    def test_silent_when_candidates_disagree(self):
        findings = findings_for({
            "repro/power/a.py": "def cost(t_s):\n    return t_s\n",
            "repro/power/b.py": "def cost(n_cycles):\n    return n_cycles\n",
            "repro/sim/use.py": """
                def drive(latency_cycles):
                    return cost(latency_cycles)
            """,
        }, "UNIT02")
        assert findings == []

    def test_silent_in_test_files(self):
        findings = findings_for({
            "repro/power/lib.py": self.LIB,
            "tests/test_use.py": """
                def test_drive():
                    assert wake_penalty(5) == 10.0
            """,
        }, "UNIT02")
        assert findings == []

    def test_pragma_suppression(self):
        findings = findings_for({
            "repro/power/lib.py": self.LIB,
            "repro/sim/use.py": """
                def drive(latency_cycles):
                    return wake_penalty(latency_cycles)  # mapglint: disable=UNIT02
            """,
        }, "UNIT02")
        assert findings == []


class TestLedger01:
    def test_add_event_requires_proven_joules(self):
        findings = findings_for({
            "repro/sim/use.py": """
                def charge(ledger, amount):
                    ledger.add_event(amount)
            """,
        }, "LEDGER01")
        (finding,) = findings
        assert "joules" in finding.message

    def test_add_event_accepts_suffix_and_product(self):
        findings = findings_for({
            "repro/sim/use.py": """
                def charge(ledger, wake_energy_j, power_w, dt_s):
                    ledger.add_event(wake_energy_j)
                    ledger.add_event(power_w * dt_s)
            """,
        }, "LEDGER01")
        assert findings == []

    def test_add_interval_requires_cycles_and_tag(self):
        findings = findings_for({
            "repro/sim/use.py": """
                def book(ledger, dt_s, bucket):
                    ledger.add_interval(bucket, dt_s)
            """,
        }, "LEDGER01")
        assert len(findings) == 2  # non-cycles residency + unknown tag
        messages = " ".join(f.message for f in findings)
        assert "cycles" in messages and "tag" in messages

    def test_add_interval_accepts_powerstate_and_cycles(self):
        findings = findings_for({
            "repro/sim/use.py": """
                def book(ledger, idle_cycles):
                    ledger.add_interval(PowerState.SLEEP, idle_cycles)
            """,
        }, "LEDGER01")
        assert findings == []

    def test_internal_writes_flagged_outside_owner(self):
        findings = findings_for({
            "repro/sim/use.py": """
                def cheat(ledger):
                    ledger._event_energy_j = 0.0
            """,
        }, "LEDGER01")
        (finding,) = findings
        assert "_event_energy_j" in finding.message

    def test_owner_module_may_write_internals(self):
        findings = findings_for({
            "repro/core/energy.py": """
                class EnergyLedger:
                    def reset(self):
                        self._event_energy_j = 0.0
            """,
        }, "LEDGER01")
        assert findings == []


class TestCfg01:
    def test_dead_field_fires(self):
        findings = findings_for({
            "repro/config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class CacheConfig:
                    unused_knob: bool = True
            """,
        }, "CFG01")
        (finding,) = findings
        assert "unused_knob" in finding.message

    def test_read_field_is_silent(self):
        findings = findings_for({
            "repro/config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class CacheConfig:
                    used_knob: bool = True
            """,
            "repro/memory/cache.py": """
                def build(config):
                    return config.used_knob
            """,
        }, "CFG01")
        assert findings == []

    def test_unvalidated_numeric_field_warns(self):
        findings = findings_for({
            "repro/config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class CoreConfig:
                    depth: int = 4
                    width: int = 2

                    def __post_init__(self):
                        if self.depth < 1:
                            raise ValueError("depth")
            """,
            "repro/sim/core.py": """
                def build(config):
                    return config.depth + config.width
            """,
        }, "CFG01")
        (finding,) = findings
        assert "width" in finding.message
        assert finding.severity.value == "warning"

    def test_dataclasses_outside_config_module_are_exempt(self):
        findings = findings_for({
            "repro/stats.py": """
                from dataclasses import dataclass

                @dataclass
                class Row:
                    never_read_anywhere: int = 0
            """,
        }, "CFG01")
        assert findings == []


class TestEvt01:
    def test_seconds_schedule_fires(self):
        findings = findings_for({
            "repro/sim/use.py": """
                def kick(queue, delay_s, cb):
                    queue.schedule(delay_s, cb)
            """,
        }, "EVT01")
        (finding,) = findings
        assert "cycles" in finding.message

    def test_cycles_and_unknown_schedules_are_silent(self):
        findings = findings_for({
            "repro/sim/use.py": """
                def kick(queue, delay_cycles, delay, cb):
                    queue.schedule(delay_cycles, cb)
                    queue.schedule_at(delay, cb)
                    queue.schedule(5, cb)
            """,
        }, "EVT01")
        assert findings == []

    def test_heappush_with_callback_payload_fires(self):
        findings = findings_for({
            "repro/sim/use.py": """
                import heapq

                def push(heap, when_cycles, callback):
                    heapq.heappush(heap, (when_cycles, callback))
            """,
        }, "EVT01")
        (finding,) = findings
        assert "tie-break" in finding.message or "sequence" in finding.message

    def test_heappush_with_integer_tiebreak_is_silent(self):
        # The multicore scheduler's (clock, core_index) entries are a
        # legitimate deterministic tie-break and must not be flagged.
        findings = findings_for({
            "repro/cpu/multicore.py": """
                import heapq

                def push(heap, clocks, index):
                    heapq.heappush(heap, (clocks[index], index))
            """,
        }, "EVT01")
        assert findings == []

    def test_direct_heap_write_fires(self):
        findings = findings_for({
            "repro/sim/use.py": """
                def clobber(queue):
                    queue._heap = []
            """,
        }, "EVT01")
        (finding,) = findings
        assert "_heap" in finding.message

    def test_owner_module_is_exempt(self):
        findings = findings_for({
            "repro/events.py": """
                import heapq

                class EventQueue:
                    def reset(self):
                        self._heap = []
            """,
        }, "EVT01")
        assert findings == []


class TestSeededRegression:
    def test_latency_cycles_into_t_access_s_is_caught(self, tmp_path):
        """The acceptance-criteria bug: cycles passed where DRAM seconds
        are expected, across a module boundary, found by the full runner."""
        dram = tmp_path / "repro" / "memory" / "dram.py"
        driver = tmp_path / "repro" / "sim" / "driver.py"
        dram.parent.mkdir(parents=True)
        driver.parent.mkdir(parents=True)
        dram.write_text(textwrap.dedent("""\
            def dram_access_energy(t_access_s):
                return t_access_s * 0.5
            """), encoding="utf-8")
        driver.write_text(textwrap.dedent("""\
            def drive(latency_cycles):
                return dram_access_energy(latency_cycles)
            """), encoding="utf-8")
        report = lint_paths([str(tmp_path)], rule_ids=["UNIT02"])
        assert not report.ok
        (finding,) = report.findings
        assert finding.rule_id == "UNIT02"
        assert "latency_cycles" in finding.message
        assert "t_access_s" in finding.message
        assert Path(finding.path).name == "driver.py"
