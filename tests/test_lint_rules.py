"""Unit tests for the mapglint rules on synthetic snippets.

Each rule gets at least one known-bad snippet it must flag and one
known-good snippet it must stay silent on; the suppression pragma and the
baseline machinery are exercised on the same snippets.
"""

import textwrap

import pytest

from repro.lint import Baseline, Severity, all_rules, get_rule
from repro.lint.runner import lint_source


def run_lint(source, path="src/repro/somewhere/module.py", rules=None):
    return lint_source(path, textwrap.dedent(source), rule_ids=rules)


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestRegistry:
    def test_all_four_rules_registered(self):
        assert [r.rule_id for r in all_rules()] == \
            ["DET01", "FLT01", "FSM01", "UNIT01"]

    def test_get_rule(self):
        assert get_rule("UNIT01").rule_id == "UNIT01"
        with pytest.raises(KeyError):
            get_rule("NOPE99")


class TestUnit01Mixing:
    def test_flags_cycle_si_addition(self):
        findings = run_lint("total = stall_cycles + wake_s\n")
        assert rule_ids(findings) == ["UNIT01"]
        assert findings[0].severity is Severity.ERROR

    def test_flags_cycle_si_division(self):
        findings = run_lint("seconds = total_cycles / frequency_hz\n")
        assert rule_ids(findings) == ["UNIT01"]

    def test_flags_cycle_si_comparison(self):
        findings = run_lint("ok = sleep_cycles > breakeven_s\n")
        assert rule_ids(findings) == ["UNIT01"]

    def test_flags_mixing_through_nesting(self):
        findings = run_lint("x = energy_j * (2 * stall_cycles)\n")
        assert rule_ids(findings) == ["UNIT01"]

    def test_silent_on_same_family(self):
        assert run_lint("total = stall_cycles + wake_cycles\n") == []
        assert run_lint("energy_j = power_w * elapsed_s\n") == []

    def test_silent_on_unsuffixed_names(self):
        assert run_lint("x = count + duration\n") == []

    def test_units_module_is_exempt(self):
        source = "seconds = total_cycles / frequency_hz\n"
        assert run_lint(source, path="src/repro/units.py") == []
        # ... but only that module, not anything named similarly.
        assert run_lint(source, path="src/repro/sim/units_helper.py") != []


class TestUnit01ScaleLiterals:
    def test_flags_scale_literal_in_multiplication(self):
        findings = run_lint("seconds = total_ns * 1e-9\n")
        assert rule_ids(findings) == ["UNIT01"]
        assert "NS" in findings[0].message

    def test_flags_scale_literal_in_division(self):
        findings = run_lint("nanos = elapsed / 1e-9\n")
        assert rule_ids(findings) == ["UNIT01"]

    def test_silent_on_epsilon_comparison(self):
        assert run_lint("done = mean_gap < 1e-9\n") == []

    def test_silent_on_epsilon_subtraction(self):
        assert run_lint("import math\nn = math.ceil(groups - 1e-9)\n") == []

    def test_silent_on_plain_decimal_spelling(self):
        # misses-per-kilo-instruction: same value as 1e3, different intent.
        assert run_lint("mpki = misses / instructions * 1000.0\n") == []

    def test_silent_on_non_scale_value(self):
        assert run_lint("stall = latency * 85e-9\n") == []


class TestDet01Rng:
    def test_flags_global_random_call(self):
        findings = run_lint("import random\nx = random.random()\n")
        assert rule_ids(findings) == ["DET01"]

    def test_flags_global_random_seed(self):
        findings = run_lint("import random\nrandom.seed(42)\n")
        assert rule_ids(findings) == ["DET01"]

    def test_flags_numpy_global_rng(self):
        findings = run_lint("import numpy as np\nx = np.random.rand(4)\n")
        assert rule_ids(findings) == ["DET01"]

    def test_silent_on_seeded_instance(self):
        source = """\
        import random
        rng = random.Random(7)
        x = rng.random()
        """
        assert run_lint(source) == []

    def test_silent_on_numpy_default_rng(self):
        source = """\
        import numpy as np
        rng = np.random.default_rng(7)
        x = rng.normal()
        """
        assert run_lint(source) == []


class TestDet01WallClock:
    def test_flags_time_time_in_sim_code(self):
        source = "import time\nstart = time.time()\n"
        findings = run_lint(source, path="src/repro/sim/simulator.py")
        assert rule_ids(findings) == ["DET01"]

    def test_flags_datetime_now_in_core_code(self):
        source = "from datetime import datetime\nt = datetime.now()\n"
        findings = run_lint(source, path="src/repro/core/controller.py")
        assert rule_ids(findings) == ["DET01"]

    def test_silent_outside_sim_code(self):
        source = "import time\nstart = time.time()\n"
        assert run_lint(source, path="src/repro/analysis/report.py") == []

    def test_flags_wall_clock_in_exec_engine(self):
        # repro/exec is in DET01 scope: wall-clock reads could leak host
        # time into scheduling, which must stay content-addressed.
        source = "import time\nstart = time.perf_counter()\n"
        findings = run_lint(source, path="src/repro/exec/engine.py")
        assert rule_ids(findings) == ["DET01"]

    def test_silent_in_allowlisted_obs_modules(self):
        # The self-profiler and the sweep/anomaly telemetry measure the
        # host on purpose; they are the only obs/exec modules allowed
        # perf_counter et al.
        source = "import time\nstart = time.perf_counter()\n"
        for module in ("src/repro/obs/profile.py", "src/repro/obs/sweep.py",
                       "src/repro/obs/anomaly.py"):
            assert run_lint(source, path=module) == []

    def test_other_obs_modules_stay_clock_free(self):
        source = "import time\nstart = time.perf_counter()\n"
        findings = run_lint(source, path="src/repro/obs/spans.py")
        assert rule_ids(findings) == ["DET01"]


class TestDet01SetIteration:
    def test_flags_set_iteration_in_exec_code(self):
        source = "for key in set(pending):\n    dispatch(key)\n"
        findings = run_lint(source, path="src/repro/exec/engine.py")
        assert rule_ids(findings) == ["DET01"]

    def test_flags_for_over_set_literal(self):
        source = "for name in {'a', 'b'}:\n    print(name)\n"
        findings = run_lint(source, path="src/repro/core/policies.py")
        assert rule_ids(findings) == ["DET01"]

    def test_flags_comprehension_over_set_call(self):
        source = "out = [x for x in set(items)]\n"
        findings = run_lint(source, path="src/repro/sim/runner.py")
        assert rule_ids(findings) == ["DET01"]

    def test_silent_on_sorted_set(self):
        source = "for x in sorted(set(items)):\n    print(x)\n"
        assert run_lint(source, path="src/repro/sim/runner.py") == []

    def test_silent_outside_scoped_packages(self):
        source = "for name in {'a', 'b'}:\n    print(name)\n"
        assert run_lint(source, path="src/repro/analysis/report.py") == []


class TestFsm01:
    def test_flags_illegal_pair(self):
        source = "pair = (PgState.SLEEP, PgState.ACTIVE)\n"
        findings = run_lint(source)
        assert rule_ids(findings) == ["FSM01"]
        assert "SLEEP -> ACTIVE" in findings[0].message

    def test_flags_unknown_state(self):
        findings = run_lint("state = PgState.HIBERNATE\n")
        assert rule_ids(findings) == ["FSM01"]

    def test_silent_on_legal_pair(self):
        assert run_lint("pair = (PgState.DRAIN, PgState.SLEEP)\n") == []

    def test_silent_on_self_pair(self):
        assert run_lint("pair = (PgState.ACTIVE, PgState.ACTIVE)\n") == []

    def test_silent_on_mixed_tuple(self):
        # (state, cycle) tuples are schedules, not transitions.
        assert run_lint("step = (PgState.STALL, 10)\n") == []

    def test_silent_on_enum_api_access(self):
        assert run_lint("names = PgState.__members__\n") == []


class TestFlt01:
    def test_flags_float_literal_equality(self):
        source = "same = leakage == 0.0\n"
        findings = run_lint(source, path="src/repro/power/model.py")
        assert rule_ids(findings) == ["FLT01"]
        assert findings[0].severity is Severity.WARNING

    def test_flags_si_identifier_inequality(self):
        source = "changed = energy_j != baseline_j\n"
        findings = run_lint(source, path="src/repro/core/energy.py")
        assert rule_ids(findings) == ["FLT01"]

    def test_silent_on_int_equality(self):
        source = "done = count == 0\n"
        assert run_lint(source, path="src/repro/power/model.py") == []

    def test_silent_on_float_ordering(self):
        source = "won = saving_j > 0.0\n"
        assert run_lint(source, path="src/repro/power/model.py") == []

    def test_silent_outside_energy_code(self):
        source = "same = value == 0.0\n"
        assert run_lint(source, path="src/repro/trace/io.py") == []


class TestSuppression:
    def test_disable_pragma_silences_named_rule(self):
        source = "total = stall_cycles + wake_s  # mapglint: disable=UNIT01\n"
        assert run_lint(source) == []

    def test_disable_all(self):
        source = "total = stall_cycles + wake_s  # mapglint: disable=all\n"
        assert run_lint(source) == []

    def test_disable_other_rule_does_not_silence(self):
        source = "total = stall_cycles + wake_s  # mapglint: disable=DET01\n"
        assert rule_ids(run_lint(source)) == ["UNIT01"]


class TestBaseline:
    def test_baseline_absorbs_known_finding(self, tmp_path):
        findings = run_lint("total = stall_cycles + wake_s\n")
        baseline = Baseline.from_findings(findings)
        new, stale = baseline.filter(findings)
        assert new == [] and stale == []

    def test_baseline_does_not_absorb_second_copy(self):
        one = run_lint("total = stall_cycles + wake_s\n")
        two = run_lint("total = stall_cycles + wake_s\n"
                       "again = stall_cycles + wake_s\n")
        baseline = Baseline.from_findings(one)
        new, _ = baseline.filter(two)
        assert len(new) == 1

    def test_stale_entries_reported(self):
        findings = run_lint("total = stall_cycles + wake_s\n")
        baseline = Baseline.from_findings(findings)
        new, stale = baseline.filter([])
        assert new == [] and len(stale) == 1

    def test_round_trip_through_file(self, tmp_path):
        findings = run_lint("total = stall_cycles + wake_s\n")
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(str(path))
        loaded = Baseline.load(str(path))
        new, stale = loaded.filter(findings)
        assert new == [] and stale == []
