"""SARIF 2.1.0 output: schema shape, rule inventory, and CLI integration."""

import json
import textwrap

from repro.lint import all_rule_ids, to_sarif
from repro.lint.cli import main as lint_main
from repro.lint.findings import Finding, Severity

FINDING = Finding(path="src/repro/sim/x.py", line=7, column=3,
                  rule_id="UNIT01", severity=Severity.ERROR,
                  message="mixing", line_text="a_cycles + b_s")


class TestSarifShape:
    def test_top_level_envelope(self):
        log = to_sarif([FINDING])
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        assert len(log["runs"]) == 1

    def test_driver_lists_every_enabled_rule(self):
        log = to_sarif([])
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == list(all_rule_ids())
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in ("error", "warning")

    def test_effect_rules_are_in_the_inventory(self):
        # The registry drives the driver block, but the effect and
        # concurrency rules are load-bearing for code scanning: pin them
        # by name.
        pinned = {"CACHE01", "PURE01", "OBS01", "PAR01",
                  "CONC01", "CONC02", "CONC03", "CONC04",
                  "ERR01", "ERR02", "ERR03", "ERR04", "RES01",
                  "TWIN01", "TWIN02", "TWIN03", "TWIN04"}
        log = to_sarif([])
        ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        assert pinned <= ids
        assert pinned <= set(all_rule_ids())

    def test_rule_subset_restricts_the_inventory(self):
        log = to_sarif([], rule_ids=["UNIT02", "CFG01"])
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["CFG01", "UNIT02"]

    def test_result_shape_and_rule_index(self):
        log = to_sarif([FINDING])
        run = log["runs"][0]
        (result,) = run["results"]
        assert result["ruleId"] == "UNIT01"
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "UNIT01"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/sim/x.py"
        assert location["region"] == {"startLine": 7, "startColumn": 3}
        assert result["level"] == "error"
        assert result["partialFingerprints"]["mapglintFingerprint/v1"]

    def test_fingerprint_is_line_number_stable(self):
        moved = Finding(path=FINDING.path, line=99, column=1,
                        rule_id=FINDING.rule_id, severity=FINDING.severity,
                        message=FINDING.message, line_text=FINDING.line_text)
        first = to_sarif([FINDING])["runs"][0]["results"][0]
        second = to_sarif([moved])["runs"][0]["results"][0]
        assert first["partialFingerprints"] == second["partialFingerprints"]

    def test_pseudo_rules_appear_when_present(self):
        syntax = Finding(path="x.py", line=1, column=1, rule_id="SYNTAX",
                         severity=Severity.ERROR, message="cannot parse")
        log = to_sarif([syntax])
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert any(r["id"] == "SYNTAX" for r in rules)


class TestSarifCli:
    def test_format_sarif_round_trips_through_json(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent("""\
            def f(stall_cycles, wake_s):
                return stall_cycles + wake_s
            """), encoding="utf-8")
        exit_code = lint_main([str(tmp_path), "--format", "sarif",
                               "--no-cache"])
        log = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert log["version"] == "2.1.0"
        assert any(result["ruleId"] == "UNIT01"
                   for result in log["runs"][0]["results"])

    def test_clean_run_still_documents_the_rules(self, tmp_path, capsys):
        good = tmp_path / "repro" / "ok.py"
        good.parent.mkdir(parents=True)
        good.write_text("VALUE = 1\n", encoding="utf-8")
        exit_code = lint_main([str(tmp_path), "--format", "sarif",
                               "--no-cache"])
        log = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert log["runs"][0]["results"] == []
        assert [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]] \
            == list(all_rule_ids())
