"""Twin-engine drift analysis: footprints, closures, and TWIN01–TWIN04.

Synthetic modules live under ``repro/...`` paths (a tmp-dir ``repro``
tree is *not* a test path), mirroring test_lint_errflow.py.  Each seeded
defect in :class:`TestSeededDefects` is a deliberately drifted engine
pair driven through the full ``lint_paths`` pipeline — phase-1 footprint
extraction, both closure fixpoints, finding — and asserts the finding
names **both** engine sides (the oracle root-to-sink chain and the
fastsim remedy).  :func:`test_real_tree_is_twin_clean` is the point of
the exercise: the shipped oracle and fast kernel have no undocumented
drift under all four rules.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint.base import parse_suppressions
from repro.lint.fixes import fix_twin_constants
from repro.lint.project import ProjectModel, extract_summary
from repro.lint.project.twin import (
    const_key, extract_module_twin, parse_twin_exemptions)
from repro.lint.runner import lint_paths, run_project_rules

REPO_ROOT = Path(__file__).parent.parent


def twin_facts(path, source):
    source = textwrap.dedent(source)
    return extract_module_twin(path, source, ast.parse(source))


def summarize(path, source):
    source = textwrap.dedent(source)
    return extract_summary(path, source, ast.parse(source),
                           parse_suppressions(source))


def model_of(modules):
    return ProjectModel(
        [summarize(path, src) for path, src in modules.items()])


def findings_for(modules, rule_id):
    summaries = [summarize(path, src) for path, src in modules.items()]
    return run_project_rules(summaries, rule_ids=[rule_id])


class TestTwinExtraction:
    def test_attr_reads_with_receiver_deduped(self):
        facts = twin_facts("repro/sim/x.py", """
            def cost(config):
                if config.dram.row_policy == "open":
                    return 3
                return config.dram.row_policy
        """)
        (fn,) = facts.functions
        reads = [(r.attr, r.receiver) for r in fn.reads]
        assert reads.count(("row_policy", "config.dram")) == 1
        assert ("dram", "config") in reads

    def test_string_literals_yield_identifier_words(self):
        facts = twin_facts("repro/fastsim/x.py", """
            def _eligibility(core):
                return ["miss_window > 1 (WindowedCore)"]
        """)
        (fn,) = facts.functions
        assert {"miss_window", "WindowedCore"} <= fn.names

    def test_counter_keys_direct_alias_and_flush(self):
        facts = twin_facts("repro/sim/x.py", """
            def a(self):
                self.counters.add("token_delays", 1)

            def b(self):
                counters_add = self.counters.add
                counters_add("hits", 2)

            def c(self, counters):
                self._flush_counters(counters, (
                    ("accesses", 3), ("misses", 4)))
        """)
        keys = {key for fn in facts.functions
                for key, _ in fn.counter_keys}
        assert keys == {"token_delays", "hits", "accesses", "misses"}

    def test_simulation_result_keywords(self):
        facts = twin_facts("repro/sim/x.py", """
            def finish(self):
                return SimulationResult(total_pj=self.pj, ops=self.ops)
        """)
        (fn,) = facts.functions
        assert {name for name, _ in fn.result_fields} == {"total_pj", "ops"}

    def test_constants_nontrivial_operands_only(self):
        facts = twin_facts("repro/fastsim/x.py", """
            def step(bias, v):
                bias = bias * 0.85 + 1
                if v > 96:
                    bias -= 0x9E37
                return bias * 0.85
        """)
        (fn,) = facts.functions
        by_key = {c.key: c for c in fn.constants}
        # 1 is structural (trivial), 0.85 deduped to one site, hex kept
        # as spelled with an integral canonical key.
        assert set(by_key) == {"0.85", "96", "40503"}
        assert by_key["40503"].text == "0x9E37"

    def test_const_key_unifies_spellings(self):
        assert const_key(96) == const_key(96.0) == const_key(0x60) == "96"
        assert const_key(0.25) == "0.25"

    def test_module_constant_defs_and_string_tuples(self):
        facts = twin_facts("repro/exec/version.py", """
            _EXCLUDED_DIRS = ("lint", "__pycache__")
            FAST_BREAK_EVEN = 40
        """)
        (tup,) = facts.string_tuples
        assert tup.name == "_EXCLUDED_DIRS"
        assert tup.values == ("lint", "__pycache__")
        (const_def,) = facts.constant_defs
        assert (const_def.name, const_def.key) == ("FAST_BREAK_EVEN", "40")

    def test_twin_exempt_pragma_parses_lists(self):
        source = textwrap.dedent("""
            # The kernel refuses prefetchers wholesale:
            # mapglint: twin-exempt=trained, triggers
            reasons.append("prefetcher enabled")  # mapglint: twin-exempt=issued
        """)
        assert {name for name, _ in parse_twin_exemptions(source)} == \
            {"trained", "triggers", "issued"}


class TestClosures:
    def test_delegation_edges_do_not_fold_oracle_into_fast(self):
        model = model_of({
            "repro/fastsim/kernel.py": """
                class FastSimulator:
                    def dispatch(self, trace):
                        if self.fallback_reasons:
                            return self.sim.simulate(trace)
                        return self._replay(trace)

                    def _replay(self, trace):
                        return len(trace)
            """,
            "repro/sim/simulator.py": """
                class Simulator:
                    def simulate(self, trace):
                        return self._descend(trace)

                    def _descend(self, trace):
                        return 0
            """,
        })
        twin = model.twin()
        shorts = {q.rsplit("::", 1)[-1] for q in twin.fast_functions}
        assert "FastSimulator._replay" in shorts
        assert "Simulator.simulate" not in shorts
        assert "Simulator._descend" not in shorts

    def test_oracle_chain_names_root_to_sink(self):
        model = model_of({
            "repro/sim/simulator.py": """
                class Simulator:
                    def handle_segment(self, seg, config):
                        return self._dram_cost(config)

                    def _dram_cost(self, config):
                        return config.dram.banks
            """,
        })
        twin = model.twin()
        (sink,) = [q for q in twin.oracle_functions
                   if q.endswith("_dram_cost")]
        assert twin.describe_chain(sink, twin.oracle_parents) == \
            "Simulator.handle_segment -> Simulator._dram_cost"


class TestSeededDefects:
    def _tree(self, tmp_path, rel, body):
        target = tmp_path
        for part in rel.split("/"):
            target = target / part
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
        return target

    # -- TWIN01 ------------------------------------------------------------

    def _config_drift_tree(self, tmp_path, kernel_body):
        self._tree(tmp_path, "repro/config.py", """
            from dataclasses import dataclass

            @dataclass
            class DramConfig:
                row_policy: str = "open"
        """)
        self._tree(tmp_path, "repro/sim/simulator.py", """
            class Simulator:
                def handle_segment(self, seg, config):
                    return self._dram_cost(config)

                def _dram_cost(self, config):
                    if config.dram.row_policy != "open":
                        return 9
                    return 3
        """)
        self._tree(tmp_path, "repro/fastsim/kernel.py", kernel_body)

    def test_seeded_unread_config_field_caught(self, tmp_path):
        self._config_drift_tree(tmp_path, """
            class FastSimulator:
                def _eligibility(self, config):
                    return []

                def _replay(self, ops):
                    return len(ops)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["TWIN01"])
        (finding,) = report.findings
        assert finding.rule_id == "TWIN01"
        assert "DramConfig.row_policy" in finding.message
        # Both engine sides are named: the oracle chain and the fast fix.
        assert "handle_segment -> Simulator._dram_cost" in finding.message
        assert "FastSimulator._eligibility" in finding.message
        assert finding.path.endswith("repro/sim/simulator.py")

    def test_fast_read_covers_the_field(self, tmp_path):
        self._config_drift_tree(tmp_path, """
            class FastSimulator:
                def _replay(self, ops, config):
                    row_open = config.dram.row_policy == "open"
                    return len(ops) if row_open else 0
        """)
        assert lint_paths([str(tmp_path)], rule_ids=["TWIN01"]).findings == []

    def test_eligibility_refusal_string_covers_the_field(self, tmp_path):
        self._config_drift_tree(tmp_path, """
            class FastSimulator:
                def _eligibility(self, config):
                    return ["row_policy not supported"]
        """)
        assert lint_paths([str(tmp_path)], rule_ids=["TWIN01"]).findings == []

    def test_twin_exempt_pragma_covers_the_field(self, tmp_path):
        self._config_drift_tree(tmp_path, """
            class FastSimulator:
                # Closed-row DRAM stays oracle-only this PR:
                # mapglint: twin-exempt=row_policy
                def _replay(self, ops):
                    return len(ops)
        """)
        assert lint_paths([str(tmp_path)], rule_ids=["TWIN01"]).findings == []

    # -- TWIN02 ------------------------------------------------------------

    def _counter_drift_tree(self, tmp_path, flush_pairs):
        self._tree(tmp_path, "repro/sim/simulator.py", """
            class Simulator:
                def handle_segment(self, seg):
                    self.counters.add("token_delays", 1)
                    return seg.cycles
        """)
        self._tree(tmp_path, "repro/fastsim/kernel.py", f"""
            class FastSimulator:
                def _replay(self, ops):
                    return len(ops)

                def _flush(self, counters, delays):
                    self._flush_counters(counters, ({flush_pairs}))
        """)

    def test_seeded_missing_counter_writer_caught(self, tmp_path):
        self._counter_drift_tree(tmp_path, '("accesses", delays),')
        report = lint_paths([str(tmp_path)], rule_ids=["TWIN02"])
        (finding,) = report.findings
        assert finding.rule_id == "TWIN02"
        assert "'token_delays'" in finding.message
        assert "Simulator.handle_segment" in finding.message
        assert "flush" in finding.message

    def test_fast_flush_writer_covers_the_counter(self, tmp_path):
        self._counter_drift_tree(
            tmp_path, '("accesses", delays), ("token_delays", delays),')
        assert lint_paths([str(tmp_path)], rule_ids=["TWIN02"]).findings == []

    def test_seeded_ledger_tag_and_result_field_caught(self, tmp_path):
        self._tree(tmp_path, "repro/sim/simulator.py", """
            class Simulator:
                def handle_segment(self, seg):
                    self.ledger.charge(PowerState.NAP, seg.cycles)
                    return self._finish(seg)

                def _finish(self, seg):
                    return SimulationResult(total_pj=seg.pj)
        """)
        self._tree(tmp_path, "repro/fastsim/kernel.py", """
            class FastSimulator:
                def _replay(self, ops):
                    return len(ops)
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["TWIN02"])
        messages = sorted(f.message for f in report.findings)
        assert len(messages) == 2
        assert "PowerState.NAP" in messages[1]
        assert "'total_pj'" in messages[0]
        assert "handle_segment -> Simulator._finish" in messages[0]

    # -- TWIN03 ------------------------------------------------------------

    def test_seeded_digest_hole_caught(self, tmp_path):
        self._tree(tmp_path, "repro/exec/version.py", """
            _EXCLUDED_DIRS = ("lint", "__pycache__")
        """)
        self._tree(tmp_path, "repro/sim/simulator.py", """
            class Simulator:
                def handle_segment(self, seg):
                    return shared_cost(seg)
        """)
        self._tree(tmp_path, "repro/lint/shared.py", """
            def shared_cost(seg):
                return seg.cycles * 3
        """)
        report = lint_paths([str(tmp_path)], rule_ids=["TWIN03"])
        (finding,) = report.findings
        assert finding.rule_id == "TWIN03"
        assert finding.path.endswith("repro/lint/shared.py")
        assert "handle_segment -> shared_cost" in finding.message
        assert "_EXCLUDED_DIRS" in finding.message
        assert "version.py" in finding.message
        assert "stale cached results" in finding.message

    def test_digest_rule_quiet_without_version_module(self, tmp_path):
        self._tree(tmp_path, "repro/sim/simulator.py", """
            class Simulator:
                def handle_segment(self, seg):
                    return seg.cycles
        """)
        assert lint_paths([str(tmp_path)], rule_ids=["TWIN03"]).findings == []

    # -- TWIN04 ------------------------------------------------------------

    def _const_drift_tree(self, tmp_path):
        self._tree(tmp_path, "repro/core/policies.py", """
            AIMD_DECAY = 0.85

            def decay(bias):
                return bias * 0.85
        """)
        self._tree(tmp_path, "repro/sim/simulator.py", """
            class Simulator:
                def handle_segment(self, seg, bias):
                    return decay(bias)
        """)
        kernel = self._tree(tmp_path, "repro/fastsim/kernel.py", """
            class FastSimulator:
                def _replay(self, bias):
                    return bias * 0.85
        """)
        return kernel

    def test_seeded_duplicated_constant_caught(self, tmp_path):
        self._const_drift_tree(tmp_path)
        report = lint_paths([str(tmp_path)], rule_ids=["TWIN04"])
        (finding,) = report.findings
        assert finding.rule_id == "TWIN04"
        assert finding.path.endswith("repro/fastsim/kernel.py")
        # Names both duplicate sites and the mechanical remedy.
        assert "FastSimulator._replay" in finding.message
        assert "decay" in finding.message
        assert "policies.py" in finding.message
        assert "AIMD_DECAY" in finding.message
        assert "--fix" in finding.message

    def test_fix_hoists_fastsim_literal_onto_shared_def(self, tmp_path):
        kernel = self._const_drift_tree(tmp_path)
        files = sorted(str(p) for p in tmp_path.rglob("*.py"))
        changed = fix_twin_constants(files)
        assert changed == {str(kernel): 1}
        rewritten = kernel.read_text(encoding="utf-8")
        assert "from repro.core.policies import AIMD_DECAY" in rewritten
        assert "bias * AIMD_DECAY" in rewritten
        assert "0.85" not in rewritten
        assert lint_paths([str(tmp_path)], rule_ids=["TWIN04"]).findings == []

    def test_trivial_constants_are_never_duplicates(self, tmp_path):
        self._tree(tmp_path, "repro/core/policies.py", """
            def double(bias):
                return bias * 2
        """)
        self._tree(tmp_path, "repro/sim/simulator.py", """
            class Simulator:
                def handle_segment(self, seg, bias):
                    return double(bias)
        """)
        self._tree(tmp_path, "repro/fastsim/kernel.py", """
            class FastSimulator:
                def _replay(self, bias):
                    return bias * 2
        """)
        assert lint_paths([str(tmp_path)], rule_ids=["TWIN04"]).findings == []


def test_real_tree_is_twin_clean():
    """The acceptance gate: all four drift rules live, zero findings.

    Every deliberate envelope exclusion in the shipped kernel is
    documented with a twin-exempt pragma; anything this test reports is
    *undocumented* drift between the oracle and the fast engine.
    """
    report = lint_paths(
        [str(REPO_ROOT / "src")],
        rule_ids=["TWIN01", "TWIN02", "TWIN03", "TWIN04"])
    assert report.files_checked > 100
    assert report.ok, "\n".join(
        f"{f.location()} [{f.rule_id}] {f.message}"
        for f in report.all_findings)
