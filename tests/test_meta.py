"""Meta-integrity: documentation, benches, and API hygiene stay in sync.

These tests keep the repository honest as it grows: every experiment
DESIGN.md promises has a bench, every bench is promised, and every public
item in the library carries a docstring.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import repro

ROOT = Path(__file__).parent.parent
BENCH_DIR = ROOT / "benchmarks"


class TestDesignBenchConsistency:
    def design_targets(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        return set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))

    def bench_files(self):
        return {path.name for path in BENCH_DIR.glob("bench_*.py")}

    def test_every_promised_bench_exists(self):
        missing = self.design_targets() - self.bench_files()
        assert not missing, f"DESIGN.md promises missing benches: {missing}"

    def test_every_bench_is_promised(self):
        unlisted = self.bench_files() - self.design_targets()
        assert not unlisted, f"benches not indexed in DESIGN.md: {unlisted}"

    def test_every_bench_has_a_test_and_main(self):
        for path in sorted(BENCH_DIR.glob("bench_*.py")):
            text = path.read_text(encoding="utf-8")
            assert "def test_" in text, f"{path.name} has no pytest entry point"
            assert '__main__' in text, f"{path.name} not runnable standalone"
            assert "emit(" in text, f"{path.name} never archives its report"

    def test_experiments_md_covers_every_design_id(self):
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        design_ids = set(re.findall(r"^\| (T\d+|F\d+) \|", design, re.M))
        ledger_ids = set(re.findall(r"^\| (T\d+|F\d+) \|", experiments, re.M))
        assert design_ids <= ledger_ids, \
            f"experiments missing from the ledger: {design_ids - ledger_ids}"


def public_members():
    """Yield (module, name, object) for every public item in repro."""
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        module = importlib.import_module(info.name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != info.name:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield info.name, name, obj


class TestDocstrings:
    def test_every_public_item_documented(self):
        undocumented = [
            f"{module}.{name}"
            for module, name, obj in public_members()
            if not inspect.getdoc(obj)
        ]
        assert not undocumented, \
            f"public items without docstrings: {undocumented}"

    def test_every_module_documented(self):
        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing it runs the CLI
            module = importlib.import_module(info.name)
            if not inspect.getdoc(module):
                undocumented.append(info.name)
        assert not undocumented, \
            f"modules without docstrings: {undocumented}"
