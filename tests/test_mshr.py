"""Tests for the MSHR file."""

import pytest

from repro.errors import SimulationError
from repro.memory.mshr import Mshr


class TestAllocateLookup:
    def test_lookup_live_entry(self):
        mshr = Mshr(4)
        mshr.allocate(0x1000, cycle=0, fill_cycle=100)
        entry = mshr.lookup(0x1000, cycle=50)
        assert entry is not None
        assert entry.remaining(50) == 50

    def test_lookup_after_fill_returns_none(self):
        mshr = Mshr(4)
        mshr.allocate(0x1000, cycle=0, fill_cycle=100)
        assert mshr.lookup(0x1000, cycle=100) is None

    def test_lookup_other_line_returns_none(self):
        mshr = Mshr(4)
        mshr.allocate(0x1000, cycle=0, fill_cycle=100)
        assert mshr.lookup(0x2000, cycle=10) is None

    def test_remaining_clamps_to_zero(self):
        mshr = Mshr(1)
        entry = mshr.allocate(0x0, cycle=0, fill_cycle=10)
        assert entry.remaining(50) == 0

    def test_duplicate_allocation_rejected(self):
        mshr = Mshr(4)
        mshr.allocate(0x1000, cycle=0, fill_cycle=100)
        with pytest.raises(SimulationError):
            mshr.allocate(0x1000, cycle=10, fill_cycle=200)

    def test_reallocation_after_expiry_allowed(self):
        mshr = Mshr(4)
        mshr.allocate(0x1000, cycle=0, fill_cycle=100)
        mshr.allocate(0x1000, cycle=150, fill_cycle=300)

    def test_fill_before_allocation_rejected(self):
        mshr = Mshr(4)
        with pytest.raises(SimulationError):
            mshr.allocate(0x1000, cycle=100, fill_cycle=50)


class TestCapacity:
    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Mshr(0)

    def test_outstanding_counts_live_entries(self):
        mshr = Mshr(4)
        mshr.allocate(0x0, cycle=0, fill_cycle=100)
        mshr.allocate(0x40, cycle=0, fill_cycle=50)
        assert mshr.outstanding(10) == 2
        assert mshr.outstanding(75) == 1
        assert mshr.outstanding(200) == 0

    def test_full_file_rejects_allocation(self):
        mshr = Mshr(1)
        mshr.allocate(0x0, cycle=0, fill_cycle=100)
        with pytest.raises(SimulationError):
            mshr.allocate(0x40, cycle=10, fill_cycle=50)

    def test_wait_for_free_slot(self):
        mshr = Mshr(2)
        mshr.allocate(0x00, cycle=0, fill_cycle=100)
        mshr.allocate(0x40, cycle=0, fill_cycle=60)
        assert mshr.wait_for_free_slot(10) == 50  # earliest fill at 60
        assert mshr.wait_for_free_slot(70) == 0

    def test_wait_zero_when_free(self):
        assert Mshr(2).wait_for_free_slot(0) == 0


class TestDrain:
    def test_drain_cycle_is_latest_fill(self):
        mshr = Mshr(4)
        mshr.allocate(0x00, cycle=0, fill_cycle=80)
        mshr.allocate(0x40, cycle=0, fill_cycle=120)
        assert mshr.drain_cycle(10) == 120

    def test_drain_cycle_empty_is_now(self):
        assert Mshr(4).drain_cycle(42) == 42
