"""Tests for the multi-core segment scheduler."""

import pytest

from repro.config import CacheConfig, CoreConfig, DramConfig
from repro.cpu.core import Core, StallSegment
from repro.cpu.multicore import MultiCoreScheduler
from repro.errors import SimulationError
from repro.memory.dram import Dram
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.format import ComputeBlock, MemoryAccess


def make_cores(n, shared_dram=None):
    cores = []
    for i in range(n):
        config = CoreConfig()
        l1 = CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                         associativity=2, hit_latency_cycles=2, mshr_entries=4)
        l2 = CacheConfig(name="L2", size_bytes=4096, line_bytes=64,
                         associativity=4, hit_latency_cycles=10, mshr_entries=4)
        hierarchy = MemoryHierarchy(l1, l2, DramConfig(refresh_latency_ns=0.0),
                                    config.frequency_hz, seed=i,
                                    shared_dram=shared_dram)
        cores.append(Core(config, hierarchy))
    return cores


class TestScheduling:
    def test_needs_at_least_one_core(self):
        with pytest.raises(SimulationError):
            MultiCoreScheduler([])

    def test_trace_count_must_match_cores(self):
        scheduler = MultiCoreScheduler(make_cores(2))
        with pytest.raises(SimulationError):
            scheduler.run([[ComputeBlock(1)]], on_segment=lambda i, s: 0)

    def test_all_cores_complete(self):
        scheduler = MultiCoreScheduler(make_cores(3))
        traces = [[ComputeBlock(100)], [ComputeBlock(50)], [ComputeBlock(200)]]
        clocks = scheduler.run(traces, on_segment=lambda i, s: 0)
        assert clocks == {0: 100, 1: 50, 2: 200}

    def test_segments_delivered_in_global_time_order(self):
        scheduler = MultiCoreScheduler(make_cores(2))
        traces = [[ComputeBlock(10), ComputeBlock(10)],
                  [ComputeBlock(25)]]
        order = []

        def observe(index, segment):
            order.append(index)
            return 0

        scheduler.run(traces, on_segment=observe)
        # Core 0's first two segments coalesce into one 20-cycle segment,
        # which (starting at t=0 like core 1's) is delivered before core 1's.
        assert order[0] == 0 or order[0] == 1  # both start at 0; ties by heap
        assert len(order) == 2

    def test_penalties_fold_into_clocks(self):
        scheduler = MultiCoreScheduler(make_cores(1))
        clocks = scheduler.run([[ComputeBlock(100)]],
                               on_segment=lambda i, s: 7)
        assert clocks[0] == 107

    def test_negative_extra_rejected(self):
        scheduler = MultiCoreScheduler(make_cores(1))
        with pytest.raises(SimulationError):
            scheduler.run([[ComputeBlock(10)]], on_segment=lambda i, s: -1)

    def test_penalized_core_falls_behind(self):
        """A core slowed by penalties is scheduled later, as in real time."""
        scheduler = MultiCoreScheduler(make_cores(2))
        traces = [[ComputeBlock(10)] * 5, [ComputeBlock(10)] * 5]
        # Coalescing merges each trace into one 50-cycle segment; use memory
        # ops to break segments up instead.
        cores = make_cores(2)
        scheduler = MultiCoreScheduler(cores)
        traces = [
            [MemoryAccess(0x1000 * (i + 1)) for i in range(3)],
            [MemoryAccess(0x40_0000 * (i + 1)) for i in range(3)],
        ]
        sequence = []

        def observe(index, segment):
            sequence.append(index)
            return 500 if index == 0 else 0

        scheduler.run(traces, on_segment=observe)
        # After core 0's first penalized segment, core 1 should run several
        # segments before core 0 returns.
        first_zero = sequence.index(0)
        next_zero = sequence.index(0, first_zero + 1)
        ones_between = sequence[first_zero + 1:next_zero].count(1)
        assert ones_between >= 1


class TestSharedDramContention:
    def test_two_cores_same_bank_queue(self):
        shared = Dram(DramConfig(refresh_latency_ns=0.0))
        cores = make_cores(2, shared_dram=shared)
        scheduler = MultiCoreScheduler(cores)
        # Both cores hammer the same row region -> second sees queue wait
        # or row hit; in either case the shared bank state is visible.
        traces = [[MemoryAccess(0x0)], [MemoryAccess(0x40)]]
        stall_kinds = []

        def observe(index, segment):
            if isinstance(segment, StallSegment) and segment.off_chip:
                stall_kinds.append(segment.dram_kind)
            return 0

        scheduler.run(traces, on_segment=observe)
        assert len(stall_kinds) == 2
        # One of the two must observe the other's open row.
        assert "row_hit" in stall_kinds
