"""The perf-anomaly watcher: flattening, bands, staleness, quick actions.

The watcher's contract: a doctored slow profile against the checked-in
baseline must produce an ``anomaly_report.json`` naming the regressed
metric and a nonzero CLI exit; a healthy profile exits 0; a stale
baseline (other commit, other core count) warns but never fails.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import ConfigError, ManifestError
from repro.obs import environment_manifest
from repro.obs.anomaly import (
    ANOMALY_SCHEMA,
    DEFAULT_BANDS,
    ToleranceBand,
    append_anomaly_rows,
    archive_trace,
    compare_to_baseline,
    environment_warnings,
    flatten_metrics,
    load_perf_document,
    parse_band,
    write_anomaly_report,
)


def scorecard(ops_per_sec=40_000.0, warm_speedup=120.0, wall_s=2.0,
              environment=None, cpu_count=None):
    """A minimal bench-scorecard-shaped document."""
    return {
        "schema": "mapg.bench-throughput/1",
        "cpu_count": cpu_count if cpu_count is not None else os.cpu_count(),
        "rows": {
            "single_core": {"ops_per_sec": ops_per_sec,
                            "events_per_sec": ops_per_sec / 4.0},
            "sweep_serial": {"wall_s": wall_s},
            "sweep_parallel": {"speedup_vs_serial": 1.8, "jobs": 4},
            "cache_warm": {"speedup_vs_cold": warm_speedup,
                           "identical_to_cold": True},
        },
        "environment": (environment if environment is not None
                        else environment_manifest()),
        "self_profile": {
            "schema": "mapg.self-profile/1",
            "total_wall_s": wall_s,
            "stages": [{"name": "single_core", "wall_s": wall_s,
                        "events": 100, "events_per_sec": 50.0}],
        },
    }


class TestFlattening:
    def test_scorecard_rows_become_dotted_metrics(self):
        metrics = flatten_metrics(scorecard(ops_per_sec=1000.0))
        assert metrics["single_core.ops_per_sec"] == 1000.0
        assert metrics["sweep_parallel.speedup_vs_serial"] == 1.8
        # Booleans are not metrics.
        assert "cache_warm.identical_to_cold" not in metrics

    def test_row_metrics_win_over_profile_stages(self):
        # The self_profile stage named single_core must not clobber the
        # curated row of the same name.
        metrics = flatten_metrics(scorecard(ops_per_sec=1000.0, wall_s=9.0))
        assert metrics["single_core.events_per_sec"] == 250.0

    def test_bare_self_profile_document(self):
        report = {"schema": "mapg.self-profile/1", "total_wall_s": 1.0,
                  "stages": [{"name": "simulate", "wall_s": 1.0,
                              "events": 5000, "events_per_sec": 5000.0}]}
        metrics = flatten_metrics(report)
        assert metrics == {"simulate.wall_s": 1.0,
                           "simulate.events_per_sec": 5000.0}

    def test_sweep_manifest_counters(self):
        manifest = {"schema": "mapg.sweep-manifest/1",
                    "counters": {"cells_per_sec": 42.0, "hits": 3,
                                 "per_worker": {"1": 3}}}
        metrics = flatten_metrics(manifest)
        assert metrics["sweep.cells_per_sec"] == 42.0
        assert metrics["sweep.hits"] == 3.0
        assert "sweep.per_worker" not in metrics

    def test_sweep_grouped_counters_flatten_one_level(self):
        manifest = {"schema": "mapg.sweep-manifest/1",
                    "counters": {
                        "executed": 6,
                        "engines": {"oracle": 2, "fast": 3,
                                    "fast_fallback": 1},
                        "fallback_reasons": {"prefetcher enabled": 1},
                    }}
        metrics = flatten_metrics(manifest)
        assert metrics["sweep.engines.fast"] == 3.0
        assert metrics["sweep.engines.fast_fallback"] == 1.0
        assert metrics["sweep.fallback_reasons.prefetcher enabled"] == 1.0
        # The group itself is not a metric.
        assert "sweep.engines" not in metrics


class TestBands:
    def test_parse_band_forms(self):
        band = parse_band("single_core.ops_per_sec=0.25")
        assert band == ToleranceBand("single_core.ops_per_sec", 0.25)
        band = parse_band("sweep_serial.wall_s=0.5:lower")
        assert band.direction == "lower"

    def test_parse_band_rejects_malformed(self):
        with pytest.raises(ConfigError):
            parse_band("no-equals-sign")
        with pytest.raises(ConfigError):
            parse_band("metric=not-a-number")
        with pytest.raises(ConfigError):
            parse_band("metric=0.3:sideways")

    def test_band_validation(self):
        with pytest.raises(ConfigError):
            ToleranceBand("", 0.3)
        with pytest.raises(ConfigError):
            ToleranceBand("m", 0.0)
        with pytest.raises(ConfigError):
            ToleranceBand("m", 0.3, direction="diagonal")


class TestCompare:
    def test_identical_documents_are_ok(self):
        doc = scorecard()
        report = compare_to_baseline(doc, doc)
        assert report["ok"] is True
        assert report["schema"] == ANOMALY_SCHEMA
        assert report["anomalies"] == []
        assert "single_core.ops_per_sec" in report["checked"]
        # sweep.cells_per_sec is absent from a scorecard: skipped.
        assert "sweep.cells_per_sec" in report["skipped"]

    def test_regression_past_band_is_named(self):
        baseline = scorecard(ops_per_sec=40_000.0)
        observed = scorecard(ops_per_sec=16_000.0)  # ratio 0.4, band 0.3
        report = compare_to_baseline(observed, baseline)
        assert report["ok"] is False
        metrics = [anomaly["metric"] for anomaly in report["anomalies"]]
        assert "single_core.ops_per_sec" in metrics
        anomaly = report["anomalies"][0]
        assert anomaly["baseline"] == 40_000.0
        assert anomaly["observed"] == 16_000.0
        assert anomaly["ratio"] == pytest.approx(0.4)
        assert anomaly["band"] == 0.30

    def test_within_band_is_ok(self):
        baseline = scorecard(ops_per_sec=40_000.0)
        observed = scorecard(ops_per_sec=32_000.0)  # ratio 0.8 > 0.7
        assert compare_to_baseline(observed, baseline)["ok"] is True

    def test_lower_direction_flags_increases(self):
        baseline = scorecard(wall_s=2.0)
        observed = scorecard(wall_s=5.0)
        bands = (ToleranceBand("sweep_serial.wall_s", 0.5,
                               direction="lower"),)
        report = compare_to_baseline(observed, baseline, bands=bands)
        assert report["ok"] is False
        assert report["anomalies"][0]["metric"] == "sweep_serial.wall_s"
        # And a *decrease* of a lower-is-better metric is fine.
        report = compare_to_baseline(baseline, observed, bands=bands)
        assert report["ok"] is True

    def test_default_bands_cover_the_scorecard_rows(self):
        names = {band.metric for band in DEFAULT_BANDS}
        assert "single_core.ops_per_sec" in names
        assert "cache_warm.speedup_vs_cold" in names
        assert "sweep.cells_per_sec" in names

    def test_default_bands_watch_the_engine_mix(self):
        """A sweep silently falling back to the oracle is an anomaly."""
        def manifest(fast, fallback):
            return {"schema": "mapg.sweep-manifest/1",
                    "counters": {"engines": {"oracle": 2, "fast": fast,
                                             "fast_fallback": fallback}}}
        report = compare_to_baseline(manifest(fast=1, fallback=7),
                                     manifest(fast=8, fallback=0))
        names = {anomaly["metric"] for anomaly in report["anomalies"]}
        assert "sweep.engines.fast" in names
        # fast_fallback is lower-is-better but the baseline count is 0,
        # so only the eligibility collapse itself is flagged.
        assert report["ok"] is False
        report = compare_to_baseline(manifest(fast=8, fallback=0),
                                     manifest(fast=8, fallback=0))
        assert report["ok"] is True


class TestStaleness:
    def test_matching_environment_has_no_warnings(self):
        assert environment_warnings(scorecard()) == []

    def test_other_commit_warns_not_fails(self):
        environment = environment_manifest()
        if environment["git_sha"] is None:
            pytest.skip("not in a git checkout")
        stale_env = dict(environment, git_sha="f" * 40)
        baseline = scorecard(environment=stale_env)
        warnings = environment_warnings(baseline)
        assert any("git_sha" in warning and "--update-baseline" in warning
                   for warning in warnings)
        report = compare_to_baseline(scorecard(), baseline)
        assert report["ok"] is True  # stale baseline never fails the run
        assert report["warnings"] == warnings

    def test_other_cpu_count_warns(self):
        baseline = scorecard(cpu_count=(os.cpu_count() or 1) + 7)
        assert any("cpu_count" in warning
                   for warning in environment_warnings(baseline))


class TestReportArtifacts:
    def test_write_is_atomic_and_roundtrips(self, tmp_path):
        report = compare_to_baseline(scorecard(), scorecard())
        target = tmp_path / "nested" / "anomaly_report.json"
        written = write_anomaly_report(report, target)
        assert written == target
        assert json.loads(target.read_text()) == json.loads(
            json.dumps(report))
        # No tmp litter left behind (os.replace consumed it).
        assert list(target.parent.iterdir()) == [target]

    def test_load_perf_document_rejects_junk(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ManifestError):
            load_perf_document(bad)
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        with pytest.raises(ManifestError):
            load_perf_document(array)


class TestQuickActions:
    def test_archive_trace_copies_and_uniquifies(self, tmp_path):
        trace = tmp_path / "run.json"
        trace.write_text("{}")
        first = archive_trace(trace, tmp_path / "archive")
        second = archive_trace(trace, tmp_path / "archive")
        assert first.name == "run.json"
        assert second.name == "run-1.json"
        assert archive_trace(tmp_path / "missing.json",
                             tmp_path / "archive") is None

    def test_append_anomaly_rows(self, tmp_path):
        baseline = scorecard(ops_per_sec=40_000.0)
        observed = scorecard(ops_per_sec=10_000.0)
        report = compare_to_baseline(observed, baseline)
        log = tmp_path / "ANOMALIES.jsonl"
        appended = append_anomaly_rows(report, log)
        assert appended == len(report["anomalies"]) >= 1
        appended_again = append_anomaly_rows(report, log)
        rows = [json.loads(line) for line in
                log.read_text().splitlines()]
        assert len(rows) == appended + appended_again
        assert rows[0]["record"] == "anomaly"
        assert rows[0]["metric"] == report["anomalies"][0]["metric"]

    def test_append_nothing_when_ok(self, tmp_path):
        report = compare_to_baseline(scorecard(), scorecard())
        log = tmp_path / "ANOMALIES.jsonl"
        assert append_anomaly_rows(report, log) == 0
        assert not log.exists()


class TestWatchPerfCli:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return path

    def test_healthy_profile_exits_zero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", scorecard())
        observed = self._write(tmp_path, "observed.json", scorecard())
        report_path = tmp_path / "anomaly_report.json"
        exit_code = main(["watch-perf", str(observed),
                          "--baseline", str(baseline),
                          "--report", str(report_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "perf ok" in captured.out
        assert json.loads(report_path.read_text())["ok"] is True

    def test_doctored_slow_profile_exits_nonzero_and_names_metric(
            self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json",
                               scorecard(ops_per_sec=40_000.0))
        observed = self._write(tmp_path, "observed.json",
                               scorecard(ops_per_sec=12_000.0))
        report_path = tmp_path / "anomaly_report.json"
        log_path = tmp_path / "ANOMALIES.jsonl"
        exit_code = main(["watch-perf", str(observed),
                          "--baseline", str(baseline),
                          "--report", str(report_path),
                          "--anomalies-log", str(log_path)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "ANOMALY single_core.ops_per_sec" in captured.err
        report = json.loads(report_path.read_text())
        assert report["ok"] is False
        assert any(anomaly["metric"] == "single_core.ops_per_sec"
                   for anomaly in report["anomalies"])
        assert log_path.exists()

    def test_band_override(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json",
                               scorecard(ops_per_sec=40_000.0))
        observed = self._write(tmp_path, "observed.json",
                               scorecard(ops_per_sec=12_000.0))
        exit_code = main(["watch-perf", str(observed),
                          "--baseline", str(baseline),
                          "--report", str(tmp_path / "report.json"),
                          "--band", "single_core.ops_per_sec=0.9"])
        capsys.readouterr()
        assert exit_code == 0  # 0.3 ratio is inside a 0.9 band

    def test_archive_trace_quick_action(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json",
                               scorecard(ops_per_sec=40_000.0))
        observed = self._write(tmp_path, "observed.json",
                               scorecard(ops_per_sec=5_000.0))
        trace = tmp_path / "run.json"
        trace.write_text("{}")
        exit_code = main(["watch-perf", str(observed),
                          "--baseline", str(baseline),
                          "--report", str(tmp_path / "report.json"),
                          "--archive-trace", str(trace),
                          "--archive-dir", str(tmp_path / "archive")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "archived trace" in captured.err
        assert (tmp_path / "archive" / "run.json").exists()

    def test_bad_observed_json_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        exit_code = main(["watch-perf", str(bad),
                          "--report", str(tmp_path / "report.json")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_json_flag_prints_report(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", scorecard())
        observed = self._write(tmp_path, "observed.json", scorecard())
        exit_code = main(["watch-perf", str(observed),
                          "--baseline", str(baseline),
                          "--report", str(tmp_path / "report.json"),
                          "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert json.loads(captured.out)["schema"] == ANOMALY_SCHEMA
