"""End-to-end observability tests: the heart of the obs layer's contract.

Three guarantees are pinned here:

1. **Non-interference** — attaching a recorder never changes simulation
   results.  Golden numbers must be bit-identical with observability off
   and on, single- and multi-core.
2. **Faithfulness** — the recorded spans and metrics agree with the
   result counters they mirror (stall counts, interval tiling).
3. **Cheapness** — the disabled default costs (almost) nothing; the
   overhead guard bounds an instrumented run against an uninstrumented
   one.
"""

import json

import pytest

from repro.cli import main
from repro.config import SystemConfig, TokenConfig
from repro.core.state import PgState, PowerGateStateMachine
from repro.events import EventQueue
from repro.obs import (
    MANIFEST_SCHEMA,
    SpanRecorder,
    read_jsonl,
    read_manifest,
    validate_chrome_trace,
)
from repro.sim.runner import run_multicore, run_workload, with_policy


def _mapg(num_cores=1, tokens=False):
    config = SystemConfig(num_cores=num_cores,
                          token=TokenConfig(enabled=tokens, wake_tokens=1))
    return with_policy(config, "mapg")


class TestNonInterference:
    """Recorder attached vs absent: bit-identical results."""

    @pytest.mark.parametrize("workload", ["mcf_like", "gcc_like"])
    def test_single_core_identical(self, workload):
        config = _mapg()
        plain = run_workload(config, workload, num_ops=1500, seed=42)
        observed = run_workload(config, workload, num_ops=1500, seed=42,
                                recorder=SpanRecorder())
        # SimulationResult is a frozen dataclass: == compares every field,
        # including floats, so this is bit-identity, not approximation.
        assert plain == observed

    def test_multicore_identical(self):
        config = _mapg(num_cores=2, tokens=True)
        workloads = ["mcf_like", "lbm_like"]
        plain = run_multicore(config, workloads, num_ops=1000, seed=7)
        observed = run_multicore(config, workloads, num_ops=1000, seed=7,
                                 recorder=SpanRecorder())
        assert plain.per_core == observed.per_core
        assert plain.total_energy_j == observed.total_energy_j
        assert plain.makespan_cycles == observed.makespan_cycles

    def test_golden_numbers_unchanged_with_recorder(self):
        """The seed's golden file must hold with observability enabled."""
        from pathlib import Path

        golden_path = Path(__file__).parent / "data" / "golden.json"
        entry = json.loads(
            golden_path.read_text(encoding="utf-8"))["mcf_like"]["mapg"]
        config = with_policy(SystemConfig(), "mapg")
        result = run_workload(config, "mcf_like", num_ops=4000, seed=42,
                              recorder=SpanRecorder())
        assert result.total_cycles == entry["total_cycles"]
        assert result.offchip_stalls == entry["offchip_stalls"]
        assert result.penalty_cycles == entry["penalty_cycles"]
        assert result.energy_j == pytest.approx(entry["energy_j"], rel=1e-9)


class TestFaithfulness:
    def _run(self):
        recorder = SpanRecorder()
        result = run_workload(_mapg(), "mcf_like", num_ops=1500, seed=42,
                              recorder=recorder)
        return recorder, result

    def test_expected_tracks(self):
        recorder, __ = self._run()
        assert recorder.tracks() == ("core0", "core0/controller",
                                     "core0/gating", "dram")

    def test_offchip_span_count_matches_result(self):
        recorder, result = self._run()
        stalls = [event for event in recorder.events()
                  if event["name"] == "stall.offchip"]
        assert len(stalls) == result.offchip_stalls

    def test_gating_spans_tile_their_stall(self):
        """Child spans on core0/gating exactly tile each off-chip stall."""
        recorder, __ = self._run()
        events = recorder.events()
        stalls = [event for event in events
                  if event["name"] == "stall.offchip"]
        gating = [event for event in events
                  if event["track"] == "core0/gating"]
        assert sum(event["dur"] for event in gating) == \
            sum(event["dur"] for event in stalls)
        # And gating span names are power states.
        states = {state.value for state in PgState} | {"active"}
        assert {event["name"] for event in gating} <= states

    def test_metrics_mirror_results(self):
        recorder, result = self._run()
        metrics = {snap["name"]: snap for snap in recorder.metrics.collect()}
        assert metrics["sim.offchip_stalls"]["value"] == result.offchip_stalls
        assert metrics["sim.gated_stalls"]["value"] == result.gated_stalls
        assert metrics["sim.penalty_cycles"]["value"] == result.penalty_cycles
        assert metrics["controller.decisions"]["value"] == \
            result.offchip_stalls
        assert metrics["mem.dram_accesses"]["value"] >= result.offchip_stalls

    def test_trace_exports_clean(self):
        from repro.obs import to_chrome_trace

        recorder, __ = self._run()
        assert validate_chrome_trace(to_chrome_trace(recorder)) == []


class TestComponentInstrumentation:
    def test_event_queue_emits_instants(self):
        recorder = SpanRecorder()
        queue = EventQueue(recorder=recorder)

        def wake():
            pass

        queue.schedule(10, wake)
        queue.schedule(25, wake)
        assert queue.step() and queue.step()
        instants = [event for event in recorder.events()
                    if event["track"] == "events"]
        assert [event["start"] for event in instants] == [10, 25]
        assert all(event["name"] == "wake" for event in instants)
        assert recorder.metrics.counter("events.executed").value == 2

    def test_state_machine_emits_transitions(self):
        recorder = SpanRecorder()
        fsm = PowerGateStateMachine(recorder=recorder, track="core0/pg")
        fsm.transition(PgState.DRAIN, 100)
        fsm.transition(PgState.SLEEP, 110)
        names = [event["name"] for event in recorder.events()]
        assert names == ["active->drain", "drain->sleep"]
        assert recorder.events()[0]["args"] == {"from": "active",
                                                "to": "drain"}

    def test_event_queue_without_recorder_unchanged(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, fired.append, 1)
        assert queue.step()
        assert fired == [1]


class TestOverheadGuard:
    def test_null_recorder_overhead_bounded(self):
        """Instrumented-but-disabled must stay within ~1.3x of the seed.

        Wall-clock comparison is inherently noisy in CI, so both sides are
        best-of-3 on the same 5k-op run and the bound has headroom: the
        attribute-check design costs percents, not tens of percents — a
        2x regression (say, building GatingTraceEvent args eagerly) still
        trips it reliably.
        """
        import time

        config = _mapg()

        def best_of(runs, **kwargs):
            best = float("inf")
            for __ in range(runs):
                start = time.perf_counter()
                run_workload(config, "mcf_like", num_ops=5000, seed=42,
                             **kwargs)
                best = min(best, time.perf_counter() - start)
            return best

        best_of(1)  # warm caches and allocator before timing
        plain = best_of(3)
        instrumented = best_of(3)  # NULL_RECORDER default: the cheap path
        assert instrumented <= plain * 1.35 + 0.05


class TestCliArtifacts:
    def test_trace_out_writes_three_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "run.json"
        assert main(["run", "mcf_like", "--ops", "1200",
                     "--trace-out", str(trace), "--self-profile"]) == 0
        capsys.readouterr()

        payload = json.loads(trace.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []

        manifest = read_manifest(tmp_path / "run.manifest.json")
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["workload"] == "mcf_like"
        assert manifest["self_profile"]["total_wall_s"] > 0
        assert payload["otherData"]["manifest"]["config_digest"] == \
            manifest["config_digest"]

        records = read_jsonl(tmp_path / "run.metrics.jsonl")
        assert records[0]["record"] == "header"
        assert any(record["name"] == "sim.offchip_stalls"
                   for record in records[1:])

    def test_multicore_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "mc.json"
        assert main(["multicore", "mcf_like", "lbm_like", "--ops", "800",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []
        tracks = {event["args"]["name"] for event in payload["traceEvents"]
                  if event.get("ph") == "M" and
                  event["name"] == "thread_name"}
        assert {"core0", "core1", "dram"} <= tracks

    def test_run_without_trace_out_writes_nothing(self, tmp_path, capsys,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "mcf_like", "--ops", "400"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []
