"""Tests for run manifests and the JSONL run log (repro.obs)."""

import json

from repro.config import SystemConfig
from repro.obs import (
    MANIFEST_SCHEMA,
    JsonlWriter,
    Registry,
    build_manifest,
    config_digest,
    environment_manifest,
    git_revision,
    metrics_to_jsonl,
    read_jsonl,
    read_manifest,
    write_jsonl,
    write_manifest,
)
from repro.sim.runner import with_policy
from repro.version import __version__


class TestConfigDigest:
    def test_stable_across_calls(self):
        config = SystemConfig()
        assert config_digest(config) == config_digest(SystemConfig())

    def test_sensitive_to_config_changes(self):
        base = SystemConfig()
        assert config_digest(base) != \
            config_digest(with_policy(base, "never"))

    def test_is_hex_sha256(self):
        digest = config_digest(SystemConfig())
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestManifest:
    def test_build_manifest_fields(self):
        config = SystemConfig()
        manifest = build_manifest(config, workload="mcf_like", seed=42,
                                  num_ops=4000, command="run")
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["workload"] == "mcf_like"
        assert manifest["seed"] == 42
        assert manifest["ops"] == 4000
        assert manifest["command"] == "run"
        assert manifest["config_digest"] == config_digest(config)
        assert manifest["package_version"] == __version__
        assert manifest["config"] == config.to_dict()

    def test_no_timestamps_anywhere(self):
        # Byte-identical manifests for repeated runs require no wall time.
        manifest = build_manifest(SystemConfig(), workload="w", seed=1)
        blob = json.dumps(manifest).lower()
        for needle in ("timestamp", '"time"', '"date"'):
            assert needle not in blob

    def test_repeated_builds_identical(self):
        first = build_manifest(SystemConfig(), workload="w", seed=1)
        second = build_manifest(SystemConfig(), workload="w", seed=1)
        assert first == second

    def test_extra_merges(self):
        manifest = build_manifest(SystemConfig(), workload="w", seed=1,
                                  extra={"self_profile": {"total_wall_s": 1}})
        assert manifest["self_profile"]["total_wall_s"] == 1

    def test_write_read_roundtrip(self, tmp_path):
        manifest = build_manifest(SystemConfig(), workload="w", seed=1)
        path = tmp_path / "run.manifest.json"
        write_manifest(manifest, path)
        assert read_manifest(path) == manifest

    def test_environment_manifest_keys(self):
        env = environment_manifest()
        assert set(env) == {"package_version", "python_version",
                            "platform", "git_sha"}

    def test_git_revision_in_repo(self):
        # The test tree is a git repo; outside one this returns None, so
        # only check the shape when present.
        sha = git_revision()
        if sha is not None:
            assert len(sha) == 40


class TestRunLog:
    def test_jsonl_writer_counts_and_sorts_keys(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            writer.write({"b": 2, "a": 1})
            assert writer.records_written == 1
        line = path.read_text(encoding="utf-8").strip()
        assert line == '{"a": 1, "b": 2}'

    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        records = [{"i": index} for index in range(5)]
        assert write_jsonl(records, path) == 5
        assert read_jsonl(path) == records

    def test_metrics_to_jsonl(self, tmp_path):
        registry = Registry()
        registry.counter("sim.segments").inc(10)
        registry.gauge("depth").set(2)
        path = tmp_path / "metrics.jsonl"
        count = metrics_to_jsonl(registry, path, header={"seed": 1})
        records = read_jsonl(path)
        assert count == 3
        assert records[0] == {"record": "header", "seed": 1}
        metric_names = [record["name"] for record in records[1:]]
        assert metric_names == sorted(metric_names)
        assert all(record["record"] == "metric" for record in records[1:])
