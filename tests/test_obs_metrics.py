"""Tests for the observability metrics primitives (repro.obs.metrics)."""

import threading

import pytest

from repro.errors import ReproError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("events")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = Counter("events")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_metric_error_is_repro_error(self):
        assert issubclass(MetricError, ReproError)

    def test_snapshot(self):
        counter = Counter("events")
        counter.inc(3)
        assert counter.snapshot() == {
            "name": "events", "kind": "counter", "value": 3,
        }


class TestGauge:
    def test_set_and_add_both_ways(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.add(-4)
        assert gauge.value == 6
        assert gauge.snapshot()["kind"] == "gauge"


class TestHistogram:
    def test_bucketing_with_under_and_overflow(self):
        hist = Histogram("lat", edges=[10, 100, 1000])
        for value in (5, 10, 50, 100, 5000):
            hist.observe(value)
        snap = hist.snapshot()
        # [<10, [10,100), [100,1000), >=1000]
        assert snap["buckets"] == [1, 2, 1, 1]
        assert snap["count"] == 5
        assert hist.mean == pytest.approx(5165 / 5)

    def test_bad_edges_rejected(self):
        with pytest.raises(MetricError):
            Histogram("h", edges=[1])
        with pytest.raises(MetricError):
            Histogram("h", edges=[5, 5, 10])

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", edges=[1, 2]).mean == 0.0


class TestRegistry:
    def test_get_or_create_shares_by_name(self):
        registry = Registry()
        first = registry.counter("a")
        second = registry.counter("a")
        assert first is second
        assert len(registry) == 1

    def test_kind_collision_is_an_error(self):
        registry = Registry()
        registry.counter("a")
        with pytest.raises(MetricError):
            registry.gauge("a")
        with pytest.raises(MetricError):
            registry.histogram("a", edges=[1, 2])

    def test_collect_is_sorted_by_name(self):
        registry = Registry()
        registry.counter("zeta").inc()
        registry.gauge("alpha").set(1)
        names = [snap["name"] for snap in registry.collect()]
        assert names == sorted(names)

    def test_contains_get_and_reset(self):
        registry = Registry()
        registry.counter("a")
        assert "a" in registry
        assert registry.get("a") is not None
        assert registry.get("missing") is None
        registry.reset()
        assert len(registry) == 0

    def test_default_registry_is_process_wide(self):
        assert default_registry() is default_registry()

    def test_get_or_create_is_thread_safe(self):
        # Unlocked get-then-create lets two threads each register "the"
        # instrument; counts then split across two objects and one
        # snapshot silently loses the other's increments.  Every thread
        # must get the identical object, every time.
        registry = Registry()
        workers = 8
        barrier = threading.Barrier(workers)
        created = []

        def create(name):
            barrier.wait()
            created.append(registry.counter(name))

        for round_no in range(20):
            created.clear()
            name = f"shared.{round_no}"
            threads = [threading.Thread(target=create, args=(name,))
                       for _ in range(workers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len({id(metric) for metric in created}) == 1
            assert created[0] is registry.get(name)
