"""Tests for the self-profiling harness (repro.obs.profile).

This is host-side tooling — the one module allowed to read the wall
clock — so the tests assert structure and monotonicity, never absolute
times.
"""

from repro.obs import PROFILE_SCHEMA, SelfProfiler, StageTimer, peak_rss_bytes


class TestStageTimer:
    def test_events_per_sec_guards_zero_wall(self):
        timer = StageTimer("s")
        timer.add_events(100)
        assert timer.events_per_sec == 0.0
        timer.wall_s = 2.0
        assert timer.events_per_sec == 50.0

    def test_snapshot_keys(self):
        snap = StageTimer("s").snapshot()
        assert set(snap) == {"name", "wall_s", "events", "events_per_sec"}


class TestSelfProfiler:
    def test_stage_records_wall_time(self):
        profiler = SelfProfiler()
        with profiler.stage("work") as stage:
            stage.add_events(1000)
        report = profiler.report()
        assert report["schema"] == PROFILE_SCHEMA
        assert report["total_wall_s"] >= 0.0
        [stage_snap] = report["stages"]
        assert stage_snap["name"] == "work"
        assert stage_snap["events"] == 1000

    def test_repeated_stage_names_accumulate(self):
        profiler = SelfProfiler()
        for __ in range(3):
            with profiler.stage("loop") as stage:
                stage.add_events(10)
        report = profiler.report()
        assert len(report["stages"]) == 1
        assert report["stages"][0]["events"] == 30

    def test_stage_order_preserved(self):
        profiler = SelfProfiler()
        with profiler.stage("setup"):
            pass
        with profiler.stage("simulate"):
            pass
        assert [s["name"] for s in profiler.report()["stages"]] == \
            ["setup", "simulate"]

    def test_exception_still_charges_the_stage(self):
        profiler = SelfProfiler()
        try:
            with profiler.stage("broken"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert profiler.report()["stages"][0]["wall_s"] >= 0.0

    def test_trace_malloc_peak(self):
        profiler = SelfProfiler(trace_malloc=True)
        with profiler.stage("alloc"):
            blob = ["x" * 100 for __ in range(1000)]
            del blob
        peak = profiler.report()["peak_traced_bytes"]
        assert peak is not None and peak > 0

    def test_without_trace_malloc_peak_is_none(self):
        profiler = SelfProfiler()
        with profiler.stage("s"):
            pass
        assert profiler.report()["peak_traced_bytes"] is None


class TestPeakRss:
    def test_positive_on_posix(self):
        rss = peak_rss_bytes()
        # None only on platforms without the resource module.
        if rss is not None:
            # A running CPython interpreter needs at least a few MiB.
            assert rss > 1_000_000
