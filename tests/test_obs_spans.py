"""Tests for span recording and the Perfetto trace-event export."""

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    SpanRecorder,
    artifact_paths,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


class TestNullRecorder:
    def test_disabled_and_silent(self):
        assert NULL_RECORDER.enabled is False
        # All sinks are no-ops and return nothing.
        assert NULL_RECORDER.span("t", "n", 0, 10) is None
        assert NULL_RECORDER.instant("t", "n", 0) is None
        assert NULL_RECORDER.sample("t", "n", 0, 1.0) is None

    def test_span_recorder_is_a_null_recorder(self):
        # Components annotate the parameter as NullRecorder; the enabled
        # subclass must substitute cleanly.
        assert isinstance(SpanRecorder(), NullRecorder)
        assert SpanRecorder().enabled is True


class TestSpanRecorder:
    def test_buffers_in_recording_order(self):
        rec = SpanRecorder()
        rec.span("core0", "busy", 0, 100, category="cpu")
        rec.instant("core0/controller", "gate.full", 100,
                    args={"reason": "predicted"})
        rec.sample("dram", "queue", 120, 3)
        events = rec.events()
        assert [event["type"] for event in events] == \
            ["span", "instant", "sample"]
        assert events[0]["dur"] == 100
        assert events[1]["args"] == {"reason": "predicted"}
        assert events[2]["value"] == 3
        assert len(rec) == 3

    def test_tracks_sorted(self):
        rec = SpanRecorder()
        rec.span("zeta", "a", 0, 1)
        rec.span("alpha", "b", 0, 1)
        assert rec.tracks() == ("alpha", "zeta")

    def test_clear_keeps_registry(self):
        rec = SpanRecorder()
        rec.metrics.counter("kept").inc()
        rec.span("t", "n", 0, 1)
        rec.clear()
        assert len(rec) == 0
        assert rec.metrics.counter("kept").value == 1


class TestChromeTrace:
    def _recorder(self):
        rec = SpanRecorder()
        rec.span("core0", "stall.offchip", 10, 200, category="gating",
                 args={"gated": True})
        rec.span("core0/gating", "sleep", 40, 150, category="gating")
        rec.instant("core0/controller", "gate.full", 10)
        rec.sample("dram", "inflight", 12, 2)
        return rec

    def test_export_validates(self):
        payload = to_chrome_trace(self._recorder())
        assert validate_chrome_trace(payload) == []

    def test_one_named_thread_per_track(self):
        payload = to_chrome_trace(self._recorder())
        names = {event["args"]["name"]
                 for event in payload["traceEvents"]
                 if event["ph"] == "M" and event["name"] == "thread_name"}
        assert names == {"core0", "core0/gating", "core0/controller", "dram"}

    def test_timestamps_are_cycles(self):
        payload = to_chrome_trace(self._recorder())
        span = next(event for event in payload["traceEvents"]
                    if event.get("name") == "stall.offchip")
        assert (span["ts"], span["dur"]) == (10, 200)
        assert payload["otherData"]["timeUnit"] == "cycles"

    def test_manifest_rides_in_other_data(self):
        payload = to_chrome_trace(self._recorder(),
                                  manifest={"seed": 7, "workload": "mcf_like"})
        assert payload["otherData"]["manifest"]["seed"] == 7

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "run.json"
        count = write_chrome_trace(self._recorder(), path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert len(loaded["traceEvents"]) == count
        assert validate_chrome_trace(loaded) == []

    def test_validator_catches_problems(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        # A complete event without dur and an unnamed tid.
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 9},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("dur" in problem for problem in problems)
        assert any("never named" in problem for problem in problems)

    def test_unknown_event_type_rejected(self):
        rec = SpanRecorder()
        rec._events.append({"type": "mystery", "track": "t", "name": "n",
                            "start": 0})
        with pytest.raises(Exception):
            to_chrome_trace(rec)


class TestArtifactPaths:
    def test_sibling_names(self, tmp_path):
        trace, manifest, metrics = artifact_paths(tmp_path / "run.json")
        assert trace.name == "run.json"
        assert manifest.name == "run.manifest.json"
        assert metrics.name == "run.metrics.jsonl"

    def test_non_json_suffix(self, tmp_path):
        trace, manifest, metrics = artifact_paths(tmp_path / "trace")
        assert manifest.name == "trace.manifest.json"
