"""Sweep telemetry: neutrality, reconciliation, schemas, progress.

The load-bearing property mirrors the span recorder's: sweep *results*
are byte-identical with the recorder attached or not, at any ``jobs``
count, cold or warm cache — the recorder only observes.  On top of that,
the artifacts must *reconcile*: every unique cell is accounted for
exactly once as a hit, an executed cell, or a failure, and those counts
agree with the engine's own counters and the cache on disk.
"""

import dataclasses
import io
import json

import pytest

from repro.cli import main
from repro.config import SystemConfig
from repro.errors import SweepError
from repro.exec import JobSpec, ResultCache, SweepRunner, result_to_dict
from repro.obs import read_jsonl
from repro.obs.sweep import (
    NULL_SWEEP_RECORDER,
    SWEEP_EVENTS_SCHEMA,
    SWEEP_MANIFEST_SCHEMA,
    SweepRecorder,
    sweep_artifact_paths,
    validate_sweep_events,
    validate_sweep_manifest,
    write_sweep_artifacts,
)
from repro.sim.runner import with_policy


def canonical_bytes(results):
    return json.dumps([result_to_dict(result) for result in results],
                      sort_keys=True, separators=(",", ":")).encode("utf-8")


def tiny_specs(num_ops=200):
    config = SystemConfig()
    return [JobSpec(config=with_policy(config, policy), profile=profile,
                    num_ops=num_ops, seed=3)
            for profile in ("gcc_like", "mcf_like")
            for policy in ("never", "mapg")]


class FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestNeutrality:
    def test_default_recorder_is_shared_null_singleton(self):
        runner = SweepRunner()
        assert runner._obs is NULL_SWEEP_RECORDER
        assert NULL_SWEEP_RECORDER.enabled is False

    def test_byte_identical_on_off_serial_cold_and_warm(self, tmp_path):
        specs = tiny_specs()
        off_cold = SweepRunner(
            cache=ResultCache(str(tmp_path / "off"))).run(specs)
        on_cold = SweepRunner(
            cache=ResultCache(str(tmp_path / "on")),
            recorder=SweepRecorder()).run(specs)
        assert canonical_bytes(on_cold) == canonical_bytes(off_cold)

        off_warm = SweepRunner(
            cache=ResultCache(str(tmp_path / "off"))).run(specs)
        on_warm = SweepRunner(
            cache=ResultCache(str(tmp_path / "on")),
            recorder=SweepRecorder()).run(specs)
        assert canonical_bytes(on_warm) == canonical_bytes(off_cold)
        assert canonical_bytes(off_warm) == canonical_bytes(off_cold)

    def test_byte_identical_on_off_at_jobs_4(self):
        specs = tiny_specs()
        off = SweepRunner(jobs=4).run(specs)
        on = SweepRunner(jobs=4, recorder=SweepRecorder()).run(specs)
        assert canonical_bytes(on) == canonical_bytes(off)


class TestReconciliation:
    def test_cold_then_warm_counters_match_cache_state(self, tmp_path):
        specs = tiny_specs()
        cold_recorder = SweepRecorder()
        cold = SweepRunner(cache=ResultCache(str(tmp_path)),
                           recorder=cold_recorder)
        cold.run(specs)
        counters = cold_recorder.summary()
        assert counters["hits"] == cold.cache_hits == 0
        assert counters["misses"] == len(specs)
        assert counters["executed"] == cold.executed == len(specs)
        assert counters["failed"] == 0
        assert counters["hits"] + counters["executed"] \
            == counters["unique_cells"]

        warm_recorder = SweepRecorder()
        warm = SweepRunner(cache=ResultCache(str(tmp_path)),
                           recorder=warm_recorder)
        warm.run(specs)
        counters = warm_recorder.summary()
        assert counters["hits"] == warm.cache_hits == len(specs)
        assert counters["misses"] == 0 and counters["executed"] == 0
        assert counters["hit_rate"] == 1.0
        manifest = warm_recorder.manifest()
        assert validate_sweep_manifest(manifest) == []
        assert all(record["source"] == "cache"
                   for record in manifest["cells"].values())

    def test_dedupe_counted(self):
        specs = tiny_specs()
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(specs + specs)
        counters = recorder.summary()
        assert counters["submitted"] == 2 * len(specs)
        assert counters["unique_cells"] == len(specs)
        assert counters["dedupe"] == len(specs)

    def test_manifest_carries_spec_keys_and_timings(self):
        specs = tiny_specs()
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(specs)
        manifest = recorder.manifest()
        assert manifest["schema"] == SWEEP_MANIFEST_SCHEMA
        assert manifest["spec_keys"] == [spec.key for spec in specs]
        assert manifest["simulation_version"]
        for record in manifest["cells"].values():
            assert record["source"] == "executed"
            assert record["wall_s"] >= 0.0
        assert validate_sweep_manifest(manifest) == []

    def test_pool_run_attributes_workers(self):
        specs = tiny_specs()
        recorder = SweepRecorder()
        SweepRunner(jobs=4, recorder=recorder).run(specs)
        counters = recorder.summary()
        assert sum(counters["per_worker"].values()) == len(specs)
        # Real pool pids, not the serial sentinel.
        assert "0" not in counters["per_worker"]
        assert counters["worker_utilization"] is not None
        assert 0.0 < counters["worker_utilization"] <= 1.0


class TestFailureRecords:
    def _specs_with_poison(self):
        specs = tiny_specs(num_ops=120)
        poison = JobSpec(config=SystemConfig(), profile="no_such_profile",
                         num_ops=120, seed=3)
        return specs + [poison], poison

    def test_failed_cell_lands_in_manifest_serial(self, tmp_path):
        specs, poison = self._specs_with_poison()
        recorder = SweepRecorder()
        runner = SweepRunner(cache=ResultCache(str(tmp_path)),
                             recorder=recorder)
        with pytest.raises(SweepError):
            runner.run(specs)
        manifest = recorder.manifest()
        assert validate_sweep_manifest(manifest) == []
        assert set(manifest["failures"]) == {poison.key}
        assert "no_such_profile" in manifest["failures"][poison.key]
        assert manifest["cells"][poison.key]["source"] == "failed"
        counters = manifest["counters"]
        assert counters["failed"] == 1
        assert counters["executed"] == len(specs) - 1
        assert validate_sweep_events(recorder.events()) == []

    def test_failed_cell_lands_in_manifest_pool(self):
        specs, poison = self._specs_with_poison()
        recorder = SweepRecorder()
        with pytest.raises(SweepError):
            SweepRunner(jobs=4, recorder=recorder).run(specs)
        manifest = recorder.manifest()
        assert set(manifest["failures"]) == {poison.key}
        assert manifest["counters"]["failed"] == 1
        assert validate_sweep_manifest(manifest) == []


class TestEventStream:
    def test_events_validate_and_roundtrip_jsonl(self, tmp_path):
        specs = tiny_specs()
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(specs)
        assert validate_sweep_events(recorder.events()) == []

        manifest_path, events_path = write_sweep_artifacts(
            recorder, tmp_path / "sweep.json")
        records = read_jsonl(events_path)
        assert records[0] == {"record": "header",
                              "schema": SWEEP_EVENTS_SCHEMA,
                              "simulation_version":
                                  recorder.simulation_version}
        assert validate_sweep_events(records) == []
        assert validate_sweep_manifest(
            json.loads(manifest_path.read_text())) == []

    def test_event_order_and_types(self):
        specs = tiny_specs()
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(specs)
        kinds = [event["event"] for event in recorder.events()]
        assert kinds[0] == "sweep_begin"
        assert kinds[-1] == "sweep_end"
        assert kinds.count("cell_queued") == len(specs)
        assert kinds.count("cell_start") == len(specs)
        assert kinds.count("cell_done") == len(specs)
        assert "dispatch" in kinds
        times = [event["t"] for event in recorder.events()]
        assert times == sorted(times)

    def test_validator_rejects_tampered_streams(self):
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(tiny_specs(num_ops=120))
        good = [dict(event) for event in recorder.events()]

        assert validate_sweep_events([]) == ["event stream is empty"]

        unknown = [dict(event) for event in good]
        unknown[1]["event"] = "teleport"
        assert any("unknown type" in problem
                   for problem in validate_sweep_events(unknown))

        missing = [dict(event) for event in good]
        del missing[0]["jobs"]
        assert any("missing required key 'jobs'" in problem
                   for problem in validate_sweep_events(missing))

        backwards = [dict(event) for event in good]
        backwards[-1]["t"] = -1.0
        assert any("non-negative" in problem
                   for problem in validate_sweep_events(backwards))

        unqueued = [dict(event) for event in good]
        for event in unqueued:
            if event["event"] == "cell_done":
                event["key"] = "deadbeef"
                break
        assert any("never announced" in problem
                   for problem in validate_sweep_events(unqueued))

        truncated = good[:-1]
        assert any("last event must be sweep_end" in problem
                   for problem in validate_sweep_events(truncated))

    def test_manifest_validator_rejects_broken_documents(self):
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(tiny_specs(num_ops=120))
        good = recorder.manifest()

        assert validate_sweep_manifest({"schema": "nope"}) \
            == ["schema 'nope' != 'mapg.sweep-manifest/1'"]

        broken = json.loads(json.dumps(good))
        broken["counters"]["hits"] = 7
        assert any("do not reconcile" in problem
                   for problem in validate_sweep_manifest(broken))

        broken = json.loads(json.dumps(good))
        first = broken["spec_keys"][0]
        broken["failures"][first] = "fake"
        assert any("disagree" in problem
                   for problem in validate_sweep_manifest(broken))


class TestProgress:
    def test_tty_stream_gets_progress_and_final_newline(self):
        stream = FakeTty()
        recorder = SweepRecorder(progress=stream)
        SweepRunner(recorder=recorder).run(tiny_specs(num_ops=120))
        text = stream.getvalue()
        assert "\r" in text and text.endswith("\n")
        assert "cells" in text and "ETA" in text
        assert f"{len(tiny_specs())}/{len(tiny_specs())}" in text

    def test_non_tty_stream_stays_silent(self):
        stream = io.StringIO()
        recorder = SweepRecorder(progress=stream)
        SweepRunner(recorder=recorder).run(tiny_specs(num_ops=120))
        assert stream.getvalue() == ""


class TestArtifacts:
    def test_sibling_paths(self, tmp_path):
        manifest, events = sweep_artifact_paths(tmp_path / "s.json")
        assert manifest.name == "s.json"
        assert events.name == "s.events.jsonl"
        manifest, events = sweep_artifact_paths(tmp_path / "bare")
        assert events.name == "bare.events.jsonl"


class TestEngineTelemetry:
    def _mixed_specs(self, num_ops=200):
        """Two oracle cells, one eligible fast cell, one fast fallback."""
        config = SystemConfig()
        windowed = config.replace(
            core=dataclasses.replace(config.core, miss_window=2))
        return [
            JobSpec(config=with_policy(config, "never"),
                    profile="gcc_like", num_ops=num_ops, seed=3),
            JobSpec(config=with_policy(config, "mapg"),
                    profile="gcc_like", num_ops=num_ops, seed=3),
            JobSpec(config=with_policy(config, "mapg"),
                    profile="mcf_like", num_ops=num_ops, seed=3,
                    engine="fast"),
            JobSpec(config=with_policy(windowed, "mapg"),
                    profile="mcf_like", num_ops=num_ops, seed=3,
                    engine="fast"),
        ]

    def test_serial_sweep_counts_engines_and_reasons(self):
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(self._mixed_specs())
        counters = recorder.summary()
        assert counters["engines"] == {"oracle": 2, "fast": 1,
                                       "fast_fallback": 1}
        assert counters["fallback_reasons"] == {
            "miss_window > 1 (WindowedCore)": 1}
        manifest = recorder.manifest()
        assert validate_sweep_manifest(manifest) == []
        by_profile_engine = {
            (record["profile"], record["engine"]):
                record["fallback_reasons"]
            for record in manifest["cells"].values()}
        assert by_profile_engine[("gcc_like", "oracle")] == []
        assert by_profile_engine[("mcf_like", "fast")] in (
            [], ["miss_window > 1 (WindowedCore)"])

    def test_pool_sweep_counts_engines_and_reasons(self):
        recorder = SweepRecorder()
        SweepRunner(jobs=4, recorder=recorder).run(self._mixed_specs())
        counters = recorder.summary()
        assert counters["engines"] == {"oracle": 2, "fast": 1,
                                       "fast_fallback": 1}
        assert counters["fallback_reasons"] == {
            "miss_window > 1 (WindowedCore)": 1}
        assert validate_sweep_manifest(recorder.manifest()) == []

    def test_cell_events_carry_engine_fields(self):
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(self._mixed_specs())
        queued_engines = [event["engine"] for event in recorder.events()
                          if event["event"] == "cell_queued"]
        assert queued_engines.count("fast") == 2
        done = [event for event in recorder.events()
                if event["event"] == "cell_done"]
        assert all("engine" in event and "fallback_reasons" in event
                   for event in done)
        assert validate_sweep_events(recorder.events()) == []

    def test_manifest_validator_reconciles_engine_counters(self):
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(self._mixed_specs(num_ops=120))
        good = recorder.manifest()

        broken = json.loads(json.dumps(good))
        broken["counters"]["engines"]["fast"] += 1
        problems = validate_sweep_manifest(broken)
        assert any("counters.engines sum" in problem
                   for problem in problems)

        broken = json.loads(json.dumps(good))
        for record in broken["cells"].values():
            if record["engine"] == "oracle":
                record["engine"] = "fast"
                break
        assert any("disagree with counters.engines" in problem
                   for problem in validate_sweep_manifest(broken))

        broken = json.loads(json.dumps(good))
        broken["counters"]["fallback_reasons"]["invented reason"] = 2
        assert any("counters.fallback_reasons" in problem
                   for problem in validate_sweep_manifest(broken))

    def test_manifest_without_engine_counters_still_validates(self):
        """Forward compatibility: pre-telemetry manifests stay valid."""
        recorder = SweepRecorder()
        SweepRunner(recorder=recorder).run(tiny_specs(num_ops=120))
        old = json.loads(json.dumps(recorder.manifest()))
        del old["counters"]["engines"]
        del old["counters"]["fallback_reasons"]
        for record in old["cells"].values():
            del record["engine"]
            del record["fallback_reasons"]
        assert validate_sweep_manifest(old) == []


class TestCliTelemetry:
    def test_sweep_telemetry_out_writes_validating_artifacts(
            self, tmp_path, capsys):
        target = tmp_path / "telemetry" / "sweep.json"
        exit_code = main(["sweep", "bet", "--workload", "gcc_like",
                          "--ops", "400", "--values", "0.5", "1.0",
                          "--telemetry-out", str(target)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sweep on gcc_like" in captured.out
        assert "wrote sweep telemetry" in captured.err
        manifest = json.loads(target.read_text())
        assert validate_sweep_manifest(manifest) == []
        assert validate_sweep_events(
            read_jsonl(tmp_path / "telemetry" / "sweep.events.jsonl")) == []
        # 2 values x (never, mapg), never cells deduped across values.
        assert manifest["counters"]["submitted"] == 4
        assert manifest["counters"]["unique_cells"] == 3

    def test_sweep_without_telemetry_unchanged(self, capsys):
        exit_code = main(["sweep", "bet", "--workload", "gcc_like",
                          "--ops", "400", "--values", "0.5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sweep on gcc_like" in captured.out
        assert captured.err == ""
