"""Tests for the gating policies."""

import pytest

from repro.config import GatingConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.policies import (
    MapgPolicy,
    NaivePolicy,
    NeverPolicy,
    OraclePolicy,
    ThresholdPolicy,
    make_policy,
)
from repro.errors import ConfigError
from repro.predict.simple import FixedPredictor
from repro.predict.table import HistoryTablePredictor

STATIC = 180  # a typical closed-row estimate, well above BET


@pytest.fixture
def analyzer(circuit45):
    return BreakEvenAnalyzer(circuit45, GatingConfig())


class TestNever:
    def test_never_gates(self, analyzer):
        policy = NeverPolicy(analyzer)
        decision = policy.decide(0, 0, 10_000)
        assert not decision.gate
        assert decision.reason == "never"


class TestNaive:
    def test_gates_everything_with_late_wake(self, analyzer):
        policy = NaivePolicy(analyzer)
        for stall in (5, 50, 5000):
            decision = policy.decide(0, 0, stall)
            assert decision.gate
            assert decision.planned_wake_offset is None


class TestThreshold:
    def test_gates_when_static_clears_bet(self, analyzer):
        policy = ThresholdPolicy(analyzer, static_estimate_cycles=STATIC)
        decision = policy.decide(0, 0, 10)  # actual is irrelevant to it
        assert decision.gate
        assert decision.planned_wake_offset is None

    def test_refuses_when_static_below_bet(self, analyzer):
        policy = ThresholdPolicy(analyzer, static_estimate_cycles=5)
        decision = policy.decide(0, 0, 10_000)
        assert not decision.gate
        assert decision.reason == "threshold_below_bet"

    def test_rejects_negative_static(self, analyzer):
        with pytest.raises(ConfigError):
            ThresholdPolicy(analyzer, static_estimate_cycles=-1)


class TestOracle:
    def test_gates_profitable_stall_with_perfect_timing(self, analyzer):
        policy = OraclePolicy(analyzer)
        stall = 400
        decision = policy.decide(0, 0, stall)
        assert decision.gate
        assert decision.planned_wake_offset == stall - analyzer.wake_cycles
        assert decision.confidence == 1.0

    def test_refuses_unprofitable_stall(self, analyzer):
        policy = OraclePolicy(analyzer)
        decision = policy.decide(0, 0, analyzer.drain_cycles + 1)
        assert not decision.gate

    def test_boundary_no_margin(self, analyzer):
        policy = OraclePolicy(analyzer)
        boundary = analyzer.min_gateable_stall_cycles
        assert policy.decide(0, 0, boundary).gate
        assert not policy.decide(0, 0, boundary - 1).gate


class TestMapg:
    def make(self, analyzer, predictor=None, **config_kwargs):
        config = GatingConfig(policy="mapg", **config_kwargs)
        if predictor is None:
            predictor = HistoryTablePredictor(initial_cycles=STATIC)
        return MapgPolicy(analyzer, predictor, config, STATIC)

    def test_cold_start_uses_static_fallback_with_timer_wake(self, analyzer):
        policy = self.make(analyzer)
        decision = policy.decide(0x400000, 0, 300)
        assert decision.gate  # static estimate clears BET + margin
        assert decision.reason == "mapg_fallback_gate"
        assert decision.predicted_cycles == STATIC
        # Even at low confidence the wake is timer-scheduled — from the
        # deviation-biased fallback estimate; the data-return trigger
        # bounds any overshoot anyway.
        biased = int(round(STATIC - policy._DEV_BIAS * 0.25 * STATIC))
        assert decision.planned_wake_offset == max(
            analyzer.drain_cycles, biased - analyzer.wake_cycles)

    def test_fallback_registers_track_per_kind_latency(self, analyzer):
        policy = self.make(analyzer)
        for __ in range(60):
            policy.observe(0x999990, 0, 140, kind="row_hit")
            policy.observe(0x999994, 0, 220, kind="row_conflict")
        hit_mean = policy._fallback_registers("row_hit")[0]
        conflict_mean = policy._fallback_registers("row_conflict")[0]
        assert abs(hit_mean - 140) < 10
        assert abs(conflict_mean - 220) < 10

    def test_confident_prediction_schedules_early_wake(self, analyzer):
        policy = self.make(analyzer)
        for __ in range(10):
            policy.observe(0x400000, 0, 300)
        decision = policy.decide(0x400000, 0, 300)
        assert decision.gate
        margin = policy.config.early_margin_cycles
        assert decision.planned_wake_offset == 300 - margin - analyzer.wake_cycles
        assert decision.reason == "mapg_gate"

    def test_early_margin_shifts_wake_earlier(self, analyzer):
        tight = self.make(analyzer, early_margin_cycles=0)
        padded = self.make(analyzer, early_margin_cycles=30)
        for policy in (tight, padded):
            for __ in range(10):
                policy.observe(0x400000, 0, 300)
        offset_tight = tight.decide(0x400000, 0, 300).planned_wake_offset
        offset_padded = padded.decide(0x400000, 0, 300).planned_wake_offset
        assert offset_padded == offset_tight - 30

    def test_confident_short_prediction_refuses(self, analyzer):
        policy = self.make(analyzer)
        short = analyzer.bet_cycles // 2
        for __ in range(10):
            policy.observe(0x400000, 0, short)
        decision = policy.decide(0x400000, 0, short)
        assert not decision.gate
        assert decision.reason == "mapg_below_bet"

    def test_early_wakeup_disabled_by_config(self, analyzer):
        policy = self.make(analyzer, early_wakeup=False)
        for __ in range(10):
            policy.observe(0x400000, 0, 300)
        decision = policy.decide(0x400000, 0, 300)
        assert decision.gate
        assert decision.planned_wake_offset is None

    def test_fallback_refuses_if_static_below_bet(self, circuit45):
        analyzer = BreakEvenAnalyzer(circuit45, GatingConfig())
        config = GatingConfig(policy="mapg")
        policy = MapgPolicy(analyzer, HistoryTablePredictor(initial_cycles=5),
                            config, static_estimate_cycles=5)
        decision = policy.decide(0, 0, 10_000)
        assert not decision.gate
        assert decision.reason == "mapg_fallback_below_bet"

    def test_guard_margin_blocks_borderline_prediction(self, circuit45):
        analyzer = BreakEvenAnalyzer(
            circuit45, GatingConfig(guard_margin_cycles=50, min_confidence=0.0))
        config = GatingConfig(policy="mapg", guard_margin_cycles=50,
                              min_confidence=0.0)
        boundary = analyzer.min_gateable_stall_cycles + 10  # within margin
        predictor = FixedPredictor(boundary)
        policy = MapgPolicy(analyzer, predictor, config, STATIC)
        assert not policy.decide(0, 0, boundary).gate


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("never", NeverPolicy),
        ("naive", NaivePolicy),
        ("bet_guard", ThresholdPolicy),
        ("oracle", OraclePolicy),
    ])
    def test_named_policies(self, analyzer, name, cls):
        config = GatingConfig(policy=name)
        policy = make_policy(config, analyzer, None, STATIC)
        assert isinstance(policy, cls)

    def test_mapg_with_predictor(self, analyzer):
        config = GatingConfig(policy="mapg")
        policy = make_policy(config, analyzer,
                             HistoryTablePredictor(initial_cycles=STATIC), STATIC)
        assert isinstance(policy, MapgPolicy)

    def test_mapg_with_oracle_predictor_degrades_to_oracle(self, analyzer):
        config = GatingConfig(policy="mapg", predictor="oracle")
        policy = make_policy(config, analyzer, None, STATIC)
        assert isinstance(policy, OraclePolicy)
