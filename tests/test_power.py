"""Tests for technology nodes, the PG circuit model, and the power model."""

import math

import pytest

from repro.errors import CircuitModelError, ConfigError
from repro.power.gating import SleepTransistorNetwork
from repro.power.model import CorePowerModel, PowerState
from repro.power.technology import TECHNOLOGY_NODES, get_technology
from repro.power.temperature import leakage_scale_factor
from repro.units import cycles_to_seconds


class TestTechnology:
    def test_all_four_nodes_present(self):
        assert set(TECHNOLOGY_NODES) == {"90nm", "65nm", "45nm", "32nm"}

    def test_lookup_by_name(self):
        assert get_technology("45nm").name == "45nm"

    def test_unknown_node_rejected_with_known_list(self):
        with pytest.raises(ConfigError, match="45nm"):
            get_technology("22nm")

    def test_leakage_fraction_grows_with_scaling(self):
        fractions = [get_technology(n).leakage_fraction
                     for n in ("90nm", "65nm", "45nm", "32nm")]
        assert fractions == sorted(fractions)

    def test_vdd_falls_with_scaling(self):
        vdds = [get_technology(n).vdd_v for n in ("90nm", "65nm", "45nm", "32nm")]
        assert vdds == sorted(vdds, reverse=True)


class TestSleepTransistorNetwork:
    def test_switch_width_meets_ir_budget(self, tech45):
        network = SleepTransistorNetwork(tech45)
        drop = tech45.core_peak_current_a * network.ron_total_ohm
        assert drop <= tech45.max_ir_drop_fraction * tech45.vdd_v * 1.0001

    def test_rail_droop_saturates_at_vdd(self, tech45):
        network = SleepTransistorNetwork(tech45)
        assert network.rail_droop_v(network.decay_tau_s * 50) == pytest.approx(
            tech45.vdd_v, rel=1e-6)

    def test_rail_droop_zero_at_zero(self, tech45):
        assert SleepTransistorNetwork(tech45).rail_droop_v(0.0) == 0.0

    def test_rail_droop_rejects_negative(self, tech45):
        with pytest.raises(CircuitModelError):
            SleepTransistorNetwork(tech45).rail_droop_v(-1.0)

    def test_overhead_grows_with_sleep_then_saturates(self, tech45):
        network = SleepTransistorNetwork(tech45)
        tau = network.decay_tau_s
        short = network.overhead_energy_j(0.1 * tau)
        long = network.overhead_energy_j(3 * tau)
        very_long = network.overhead_energy_j(10 * tau)
        assert short < long
        # Past full decay only residual leakage grows (slowly).
        assert very_long - long < long - short

    def test_net_saving_negative_for_tiny_sleep(self, tech45):
        network = SleepTransistorNetwork(tech45)
        assert network.net_saving_j(1e-10) < 0.0

    def test_net_saving_positive_past_bet(self, tech45):
        network = SleepTransistorNetwork(tech45)
        bet = network.breakeven_time_s()
        assert network.net_saving_j(2 * bet) > 0.0

    def test_breakeven_is_root_of_net_saving(self, tech45):
        network = SleepTransistorNetwork(tech45)
        bet = network.breakeven_time_s()
        assert abs(network.net_saving_j(bet)) < 1e-12
        assert network.net_saving_j(bet * 0.8) < 0.0
        assert network.net_saving_j(bet * 1.2) > 0.0

    def test_bet_order_of_magnitude_nanoseconds(self, tech45):
        bet = SleepTransistorNetwork(tech45).breakeven_time_s()
        assert 1e-10 < bet < 1e-7

    def test_leakier_nodes_have_shorter_bet(self):
        bets = [SleepTransistorNetwork(get_technology(n)).breakeven_time_s()
                for n in ("90nm", "65nm", "45nm", "32nm")]
        assert bets == sorted(bets, reverse=True)

    def test_cooler_silicon_has_longer_bet(self, tech45):
        """Less leakage to save -> overhead takes longer to recoup."""
        cool = SleepTransistorNetwork(tech45, temperature_c=45.0)
        hot = SleepTransistorNetwork(tech45, temperature_c=110.0)
        assert cool.breakeven_time_s() > hot.breakeven_time_s()
        assert cool.domain_leakage_power_w < hot.domain_leakage_power_w

    def test_temperature_does_not_change_wake_latency(self, tech45):
        """Wake is a charge-delivery bound, not a leakage effect."""
        cool = SleepTransistorNetwork(tech45, temperature_c=45.0)
        hot = SleepTransistorNetwork(tech45, temperature_c=110.0)
        assert cool.wake_latency_s() == pytest.approx(hot.wake_latency_s())


class TestStaggeredWakeup:
    def test_min_groups_respects_rush_ceiling(self, tech45):
        network = SleepTransistorNetwork(tech45)
        groups = network.min_stagger_groups()
        assert network.rush_peak_current_a(groups) <= tech45.max_rush_current_a * 1.0001
        if groups > 1:
            assert network.rush_peak_current_a(groups - 1) > tech45.max_rush_current_a

    def test_fewer_groups_than_minimum_rejected(self, tech45):
        network = SleepTransistorNetwork(tech45)
        minimum = network.min_stagger_groups()
        if minimum > 1:
            with pytest.raises(CircuitModelError):
                network.wake_latency_s(minimum - 1)

    def test_more_groups_wake_slower(self, tech45):
        network = SleepTransistorNetwork(tech45)
        minimum = network.min_stagger_groups()
        assert network.wake_latency_s(minimum * 2) > network.wake_latency_s(minimum)

    def test_wake_latency_nanosecond_scale(self, tech45):
        wake = SleepTransistorNetwork(tech45).wake_latency_s()
        assert 1e-9 < wake < 1e-7

    def test_rush_current_rejects_zero_groups(self, tech45):
        with pytest.raises(CircuitModelError):
            SleepTransistorNetwork(tech45).rush_peak_current_a(0)


class TestCharacterize:
    def test_cycle_conversions(self, circuit45):
        assert circuit45.wake_cycles == math.ceil(
            circuit45.wake_latency_s * circuit45.frequency_hz - 1e-9)
        assert circuit45.breakeven_cycles >= 1

    def test_drain_includes_pipeline_and_handshake(self, tech45):
        circuit = SleepTransistorNetwork(tech45).characterize(2e9, pipeline_depth=20)
        assert circuit.drain_cycles == 22

    def test_rejects_bad_frequency(self, tech45):
        with pytest.raises(CircuitModelError):
            SleepTransistorNetwork(tech45).characterize(0.0)

    def test_net_saving_consistent_with_network(self, circuit45):
        cycles = 200
        seconds = cycles_to_seconds(cycles, circuit45.frequency_hz)
        assert circuit45.net_saving_j(cycles) == pytest.approx(
            circuit45.network.net_saving_j(seconds))


class TestTemperature:
    def test_unity_at_nominal(self):
        assert leakage_scale_factor(85.0) == pytest.approx(1.0)

    def test_doubles_per_interval(self):
        assert leakage_scale_factor(110.0) == pytest.approx(2.0)

    def test_halves_below(self):
        assert leakage_scale_factor(60.0) == pytest.approx(0.5)

    def test_rejects_unphysical_temperature(self):
        with pytest.raises(ConfigError):
            leakage_scale_factor(500.0)

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigError):
            leakage_scale_factor(85.0, doubling_interval_c=0.0)


class TestCorePowerModel:
    def test_state_power_ordering(self, power_model):
        """ACTIVE > DRAIN > STALL > SLEEP; sleep is orders cheaper."""
        active = power_model.state_power_w(PowerState.ACTIVE)
        drain = power_model.state_power_w(PowerState.DRAIN)
        stall = power_model.state_power_w(PowerState.STALL)
        sleep = power_model.state_power_w(PowerState.SLEEP)
        assert active > drain > stall > sleep
        assert sleep < 0.05 * stall

    def test_interval_energy_linear_in_cycles(self, power_model):
        one = power_model.interval_energy_j(PowerState.ACTIVE, 100)
        two = power_model.interval_energy_j(PowerState.ACTIVE, 200)
        assert two == pytest.approx(2 * one)

    def test_interval_energy_rejects_negative(self, power_model):
        with pytest.raises(ConfigError):
            power_model.interval_energy_j(PowerState.ACTIVE, -1)

    def test_event_energy_grows_with_sleep_length(self, power_model):
        short = power_model.gating_event_energy_j(10)
        long = power_model.gating_event_energy_j(10_000)
        assert long > short

    def test_event_energy_floor_is_switch_drive(self, power_model):
        floor = power_model.gating_event_energy_j(0)
        assert floor == pytest.approx(power_model.circuit.switch_event_energy_j)

    def test_hotter_means_leakier(self, circuit45):
        cool = CorePowerModel(circuit45, temperature_c=60.0)
        hot = CorePowerModel(circuit45, temperature_c=110.0)
        assert hot.leakage_power_w > cool.leakage_power_w
        assert hot.state_power_w(PowerState.STALL) > cool.state_power_w(PowerState.STALL)

    def test_background_power_positive(self, power_model):
        assert power_model.background_power_w > 0.0
