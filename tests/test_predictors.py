"""Tests for the residual-latency predictors."""

import pytest

from repro.config import GatingConfig
from repro.errors import PredictionError
from repro.predict import (
    EwmaPredictor,
    FixedPredictor,
    HistoryTablePredictor,
    LastValuePredictor,
    Prediction,
    make_predictor,
)


class TestPrediction:
    def test_rejects_negative_latency(self):
        with pytest.raises(PredictionError):
            Prediction(-1, 0.5)

    def test_rejects_confidence_out_of_range(self):
        with pytest.raises(PredictionError):
            Prediction(10, 1.5)


class TestFixed:
    def test_always_returns_constant(self):
        predictor = FixedPredictor(150)
        for pc in (0, 4, 8):
            assert predictor.predict(pc, 0).latency_cycles == 150

    def test_observe_changes_nothing(self):
        predictor = FixedPredictor(150)
        predictor.observe(0, 0, 999)
        assert predictor.predict(0, 0).latency_cycles == 150

    def test_full_confidence_by_default(self):
        assert FixedPredictor(100).predict(0, 0).confidence == 1.0

    def test_rejects_negative(self):
        with pytest.raises(PredictionError):
            FixedPredictor(-5)


class TestLastValue:
    def test_predicts_last_observation(self):
        predictor = LastValuePredictor(initial_cycles=100)
        predictor.observe(0, 0, 250)
        assert predictor.predict(0, 0).latency_cycles == 250

    def test_confidence_ramps_on_stable_stream(self):
        predictor = LastValuePredictor(initial_cycles=200)
        for __ in range(6):
            predictor.observe(0, 0, 200)
        assert predictor.predict(0, 0).confidence == 1.0

    def test_confidence_resets_on_jump(self):
        predictor = LastValuePredictor(initial_cycles=200)
        for __ in range(6):
            predictor.observe(0, 0, 200)
        predictor.observe(0, 0, 1000)
        assert predictor.predict(0, 0).confidence == 0.0

    def test_reset_restores_initial(self):
        predictor = LastValuePredictor(initial_cycles=100)
        predictor.observe(0, 0, 500)
        predictor.reset()
        assert predictor.predict(0, 0).latency_cycles == 100

    def test_rejects_negative_observation(self):
        with pytest.raises(PredictionError):
            LastValuePredictor().observe(0, 0, -1)


class TestEwma:
    def test_converges_to_stable_value(self):
        predictor = EwmaPredictor(initial_cycles=100, alpha=0.5)
        for __ in range(30):
            predictor.observe(0, 0, 300)
        assert predictor.predict(0, 0).latency_cycles == pytest.approx(300, abs=2)

    def test_confidence_zero_before_any_observation(self):
        assert EwmaPredictor(initial_cycles=100).predict(0, 0).confidence == 0.0

    def test_confidence_high_on_low_variance_stream(self):
        predictor = EwmaPredictor(initial_cycles=200)
        for __ in range(50):
            predictor.observe(0, 0, 200)
        assert predictor.predict(0, 0).confidence > 0.8

    def test_confidence_low_on_noisy_stream(self):
        predictor = EwmaPredictor(initial_cycles=200)
        for i in range(50):
            predictor.observe(0, 0, 50 if i % 2 else 800)
        assert predictor.predict(0, 0).confidence < 0.5

    def test_rejects_bad_alpha(self):
        with pytest.raises(PredictionError):
            EwmaPredictor(alpha=0.0)

    def test_reset(self):
        predictor = EwmaPredictor(initial_cycles=100)
        predictor.observe(0, 0, 900)
        predictor.reset()
        assert predictor.predict(0, 0).latency_cycles == 100
        assert predictor.predict(0, 0).confidence == 0.0


class TestHistoryTable:
    def test_cold_entry_uses_initial_estimate_zero_confidence(self):
        predictor = HistoryTablePredictor(initial_cycles=180)
        prediction = predictor.predict(0x400000, 3)
        assert prediction.latency_cycles == 180
        assert prediction.confidence == 0.0

    def test_learns_per_key(self):
        predictor = HistoryTablePredictor(entries=64)
        for __ in range(20):
            predictor.observe(0x400000, 0, 120)
            predictor.observe(0x400100, 1, 400)
        fast = predictor.predict(0x400000, 0)
        slow = predictor.predict(0x400100, 1)
        assert fast.latency_cycles == pytest.approx(120, abs=5)
        assert slow.latency_cycles == pytest.approx(400, abs=10)
        assert fast.confidence == 1.0

    def test_confidence_drops_on_misprediction(self):
        predictor = HistoryTablePredictor()
        for __ in range(10):
            predictor.observe(0x400000, 0, 120)
        before = predictor.predict(0x400000, 0).confidence
        predictor.observe(0x400000, 0, 900)
        after = predictor.predict(0x400000, 0).confidence
        assert after < before

    def test_occupancy(self):
        predictor = HistoryTablePredictor(entries=16)
        assert predictor.occupancy == 0.0
        predictor.observe(0x400000, 0, 100)
        assert predictor.occupancy == pytest.approx(1 / 16)

    def test_reset_clears_table(self):
        predictor = HistoryTablePredictor()
        predictor.observe(0x400000, 0, 100)
        predictor.reset()
        assert predictor.occupancy == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(PredictionError):
            HistoryTablePredictor(entries=0)
        with pytest.raises(PredictionError):
            HistoryTablePredictor(alpha=2.0)
        with pytest.raises(PredictionError):
            HistoryTablePredictor(tolerance=0.0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("fixed", FixedPredictor),
        ("last_value", LastValuePredictor),
        ("ewma", EwmaPredictor),
        ("table", HistoryTablePredictor),
    ])
    def test_builds_named_predictor(self, name, cls):
        config = GatingConfig(predictor=name)
        assert isinstance(make_predictor(config, 180), cls)

    def test_oracle_returns_none(self):
        config = GatingConfig(predictor="oracle")
        assert make_predictor(config, 180) is None

    def test_seeds_initial_estimate(self):
        config = GatingConfig(predictor="fixed")
        predictor = make_predictor(config, 222)
        assert predictor.predict(0, 0).latency_cycles == 222
