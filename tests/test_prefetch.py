"""Tests for the stride prefetcher and its hierarchy integration."""

import dataclasses

import pytest

from repro.config import CacheConfig, DramConfig, PrefetcherConfig, SystemConfig
from repro.errors import ConfigError
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetch import StridePrefetcher
from repro.sim.runner import run_workload, with_policy

FREQ = 2e9


class TestStrideDetection:
    def make(self, **kwargs):
        return StridePrefetcher(PrefetcherConfig(enabled=True, **kwargs))

    def test_no_prefetch_before_confirmation(self):
        prefetcher = self.make(confirmations=2)
        assert prefetcher.train(0x400000, 0x1000) == []
        assert prefetcher.train(0x400000, 0x1040) == []  # stride learned
        assert prefetcher.train(0x400000, 0x1080) == []  # 1st confirmation

    def test_confirmed_stride_prefetches_ahead(self):
        prefetcher = self.make(confirmations=2, degree=3)
        for address in (0x1000, 0x1040, 0x1080):
            prefetcher.train(0x400000, address)
        targets = prefetcher.train(0x400000, 0x10C0)
        assert targets == [0x1100, 0x1140, 0x1180]

    def test_negative_stride_supported(self):
        prefetcher = self.make(confirmations=2, degree=1)
        for address in (0x2000, 0x1FC0, 0x1F80, 0x1F40):
            result = prefetcher.train(0x400000, address)
        assert result == [0x1F00]

    def test_stride_change_resets_confidence(self):
        prefetcher = self.make(confirmations=2, degree=1)
        for address in (0x1000, 0x1040, 0x1080, 0x10C0):
            prefetcher.train(0x400000, address)
        assert prefetcher.train(0x400000, 0x5000) == []  # wild jump
        assert prefetcher.train(0x400000, 0x5040) == []  # new stride, conf 1

    def test_zero_stride_ignored(self):
        prefetcher = self.make()
        for __ in range(5):
            assert prefetcher.train(0x400000, 0x1000) == []

    def test_oversized_stride_ignored(self):
        prefetcher = self.make(max_stride_bytes=1024)
        for i in range(5):
            assert prefetcher.train(0x400000, i * 1_000_000) == []

    def test_independent_pcs(self):
        prefetcher = self.make(confirmations=2, degree=1)
        for i in range(4):
            prefetcher.train(0x400000, 0x1000 + i * 64)
            prefetcher.train(0x400100, 0x9000 + i * 4096)
        assert prefetcher.train(0x400000, 0x1000 + 4 * 64) == [0x1000 + 5 * 64]

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PrefetcherConfig(degree=0)
        with pytest.raises(ConfigError):
            PrefetcherConfig(table_entries=0)


class TestHierarchyIntegration:
    def make_hierarchy(self, enabled=True, degree=2):
        l1 = CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                         associativity=2, hit_latency_cycles=2, mshr_entries=4)
        l2 = CacheConfig(name="L2", size_bytes=16 * 1024, line_bytes=64,
                         associativity=4, hit_latency_cycles=10, mshr_entries=8)
        return MemoryHierarchy(
            l1, l2, DramConfig(refresh_latency_ns=0.0), FREQ,
            prefetcher_config=PrefetcherConfig(enabled=enabled, degree=degree,
                                               confirmations=2))

    def walk(self, hierarchy, start, count, stride=4096, pc=0x400000,
             gap=5000):
        results = []
        cycle = 0
        for i in range(count):
            results.append(hierarchy.access(start + i * stride, cycle, pc=pc))
            cycle += gap
        return results

    def test_trained_stream_stops_missing(self):
        hierarchy = self.make_hierarchy()
        results = self.walk(hierarchy, 0x10000, 10)
        # After training (3 accesses), later accesses hit prefetched lines.
        later_levels = [r.level for r in results[4:]]
        assert "l2" in later_levels
        assert hierarchy.counters.get("useful_prefetches") > 0

    def test_disabled_prefetcher_never_fills(self):
        hierarchy = self.make_hierarchy(enabled=False)
        self.walk(hierarchy, 0x10000, 10)
        assert hierarchy.prefetcher is None
        assert hierarchy.counters.get("prefetch_fills") == 0

    def test_redundant_prefetches_counted_not_issued(self):
        hierarchy = self.make_hierarchy(degree=4)
        # Walk the same short region twice: second pass triggers redundant.
        self.walk(hierarchy, 0x10000, 6)
        self.walk(hierarchy, 0x10000, 6)
        assert hierarchy.counters.get("prefetch_redundant") > 0

    def test_prefetch_fills_occupy_dram(self):
        with_pf = self.make_hierarchy(degree=4)
        without = self.make_hierarchy(enabled=False)
        self.walk(with_pf, 0x10000, 10)
        self.walk(without, 0x10000, 10)
        assert with_pf.dram.counters.get("accesses") > \
            without.dram.counters.get("accesses")

    def test_late_prefetch_merges_with_residual(self):
        """A demand arriving right behind its prefetch pays only the tail."""
        hierarchy = self.make_hierarchy(degree=1)
        cycle = 0
        # Train with wide gaps.
        for i in range(4):
            hierarchy.access(0x10000 + i * 4096, cycle, pc=0x400000)
            cycle += 5000
        # The 4th access prefetched 0x10000+4*4096; touch it immediately.
        result = hierarchy.access(0x10000 + 4 * 4096, cycle - 4990, pc=0x400000)
        assert result.merged
        assert hierarchy.counters.get("late_prefetches") >= 1


class TestEndToEnd:
    def test_prefetcher_speeds_up_streaming_workload(self):
        base = SystemConfig()
        pf_config = base.replace(
            prefetcher=PrefetcherConfig(enabled=True, degree=4))
        off = run_workload(with_policy(base, "never"),
                           "libquantum_like", 4000, seed=11)
        on = run_workload(with_policy(pf_config, "never"),
                          "libquantum_like", 4000, seed=11)
        assert on.total_cycles < off.total_cycles
        assert on.offchip_stalls < off.offchip_stalls

    def test_prefetcher_barely_helps_pointer_chasing(self):
        base = SystemConfig()
        pf_config = base.replace(
            prefetcher=PrefetcherConfig(enabled=True, degree=4))
        off = run_workload(with_policy(base, "never"), "mcf_like", 4000, seed=11)
        on = run_workload(with_policy(pf_config, "never"), "mcf_like", 4000, seed=11)
        speedup_mcf = off.total_cycles / on.total_cycles
        assert speedup_mcf < 1.15

    def test_prefetcher_in_json_roundtrip(self):
        config = SystemConfig(prefetcher=PrefetcherConfig(enabled=True, degree=8))
        restored = SystemConfig.from_json(config.to_json())
        assert restored.prefetcher.degree == 8
