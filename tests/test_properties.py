"""Property-based tests (hypothesis) on core data structures and invariants."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wakeup import resolve_wakeup
from repro.memory.cache import Cache
from repro.config import CacheConfig, DramConfig, GatingConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.memory.dram import Dram
from repro.power.gating import SleepTransistorNetwork
from repro.power.technology import get_technology
from repro.stats import CounterSet, Histogram, IntervalAccumulator, RunningMean
from repro.trace.format import ComputeBlock, MemoryAccess
from repro.trace.io import read_trace, write_trace


# ---- wakeup timing algebra ---------------------------------------------------

@given(
    stall=st.integers(min_value=0, max_value=10_000),
    drain=st.integers(min_value=0, max_value=100),
    wake=st.integers(min_value=0, max_value=100),
    offset_slack=st.one_of(st.none(), st.integers(min_value=0, max_value=10_000)),
    token_delay=st.integers(min_value=0, max_value=200),
)
def test_wakeup_tiling_invariant(stall, drain, wake, offset_slack, token_delay):
    """drain + sleep + wake + idle == stall + penalty, for every input."""
    offset = None if offset_slack is None else drain + offset_slack
    plan = resolve_wakeup(stall, drain, wake, offset, token_delay)
    assert plan.drain + plan.sleep + plan.wake + plan.idle_awake == \
        stall + plan.penalty
    assert plan.penalty >= 0
    assert plan.token_wait <= plan.sleep


@given(
    stall=st.integers(min_value=1, max_value=10_000),
    drain=st.integers(min_value=0, max_value=100),
    wake=st.integers(min_value=1, max_value=100),
)
def test_early_wakeup_never_worse_than_naive(stall, drain, wake):
    """The fallback trigger bounds any plan's penalty at the naive penalty."""
    naive = resolve_wakeup(stall, drain, wake, planned_wake_offset=None)
    for offset_slack in (0, wake // 2, wake, stall):
        plan = resolve_wakeup(stall, drain, wake,
                              planned_wake_offset=drain + offset_slack)
        assert plan.penalty <= naive.penalty


# ---- cache ---------------------------------------------------------------------

@st.composite
def cache_and_addresses(draw):
    sets = draw(st.sampled_from([1, 2, 4, 8]))
    ways = draw(st.sampled_from([1, 2, 4]))
    config = CacheConfig(name="P", size_bytes=sets * ways * 64, line_bytes=64,
                         associativity=ways,
                         replacement=draw(st.sampled_from(["lru", "plru", "random"])))
    addresses = draw(st.lists(
        st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
    return config, addresses


@given(cache_and_addresses())
@settings(max_examples=50)
def test_cache_immediate_rehit(params):
    """Any just-accessed address must hit if re-accessed immediately."""
    config, addresses = params
    cache = Cache(config, seed=1)
    for address in addresses:
        cache.access(address)
        assert cache.probe(address)
        assert cache.access(address).hit


@given(cache_and_addresses())
@settings(max_examples=50)
def test_cache_counter_consistency(params):
    config, addresses = params
    cache = Cache(config, seed=1)
    for address in addresses:
        cache.access(address)
    counters = cache.counters
    assert counters.get("hits") + counters.get("misses") == counters.get("accesses")
    assert counters.get("writebacks") == 0  # reads never dirty lines


# ---- DRAM ----------------------------------------------------------------------

@given(
    addresses=st.lists(st.integers(min_value=0, max_value=1 << 30),
                       min_size=1, max_size=100),
    start_ns=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
@settings(max_examples=50)
def test_dram_latency_bounds(addresses, start_ns):
    """Latency is always >= the row-hit floor and finite."""
    config = DramConfig(refresh_latency_ns=0.0)
    dram = Dram(config)
    floor = (config.controller_overhead_ns + config.t_cas_ns
             + config.queue_service_ns + config.bus_transfer_ns)
    now = start_ns
    for address in addresses:
        result = dram.access(address, now)
        assert result.latency_ns >= floor - 1e-9
        assert result.latency_ns < 1e7
        now += 1.0


# ---- histogram --------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=300))
def test_histogram_percentiles_bounded_by_min_max(values):
    histogram = Histogram.linear(0.0, 1e4, 20)
    histogram.observe_many(values)
    for p in (0, 25, 50, 75, 100):
        assert histogram.min - 1e-9 <= histogram.percentile(p) <= histogram.max + 1e-9
    assert histogram.count == len(values)


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                min_size=2, max_size=200))
def test_running_mean_matches_numpy_free_reference(values):
    stream = RunningMean()
    for value in values:
        stream.observe(value)
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    mean_tol = 1e-6
    var_tol = 1e-5
    assert abs(stream.mean - mean) < mean_tol * max(1.0, abs(mean))
    assert abs(stream.variance - variance) < var_tol * max(1.0, variance)


# ---- counters -----------------------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.floats(min_value=0.0, max_value=100.0)),
                max_size=100))
def test_counterset_total_is_sum_of_increments(increments):
    counters = CounterSet()
    expected = {}
    for name, amount in increments:
        counters.add(name, amount)
        expected[name] = expected.get(name, 0.0) + amount
    for name, total in expected.items():
        assert abs(counters.get(name) - total) < 1e-9


# ---- intervals ------------------------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["x", "y", "z"]),
                          st.integers(min_value=0, max_value=100)),
                min_size=1, max_size=50))
def test_interval_accumulator_conserves_time(steps):
    acc = IntervalAccumulator("x", keep_records=True)
    cycle = 0
    for state, length in steps:
        cycle += length
        acc.switch(state, cycle)
    acc.close(cycle)
    assert acc.grand_total() == cycle
    acc.verify_contiguous()


# ---- trace round-trip ------------------------------------------------------------------

trace_ops = st.lists(
    st.one_of(
        st.builds(ComputeBlock, instructions=st.integers(1, 10_000)),
        st.builds(MemoryAccess,
                  address=st.integers(0, (1 << 48) - 1),
                  pc=st.integers(0, (1 << 32) - 1),
                  is_write=st.booleans(),
                  dependent=st.booleans()),
    ),
    max_size=100)


@given(trace_ops)
def test_trace_jsonl_roundtrip(ops):
    buffer = io.StringIO()
    write_trace(ops, buffer)
    buffer.seek(0)
    assert list(read_trace(buffer)) == ops


# ---- break-even -------------------------------------------------------------------------

@given(
    node=st.sampled_from(["90nm", "65nm", "45nm", "32nm"]),
    stall=st.integers(min_value=0, max_value=5000),
    margin=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60)
def test_worthwhile_is_monotone_in_stall(node, stall, margin):
    """If a stall is worth gating, every longer stall is too."""
    circuit = SleepTransistorNetwork(get_technology(node)).characterize(2e9)
    analyzer = BreakEvenAnalyzer(circuit, GatingConfig(guard_margin_cycles=margin))
    if analyzer.worthwhile(stall):
        assert analyzer.worthwhile(stall + 1)
        assert analyzer.worthwhile(stall * 2 + 1)
    else:
        assert not analyzer.worthwhile(max(0, stall - 1))
