"""Property-based tests over the controller, token arbiter, and cores."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, CoreConfig, DramConfig, GatingConfig, TokenConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.controller import MapgController
from repro.core.policies import make_policy
from repro.core.token import TokenArbiter
from repro.cpu.core import BusySegment, StallSegment
from repro.cpu.window import WindowedCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.power.gating import SleepTransistorNetwork
from repro.power.model import CorePowerModel
from repro.power.technology import get_technology
from repro.predict.table import make_predictor
from repro.trace.format import ComputeBlock, MemoryAccess

# One shared characterization (expensive enough to hoist out of examples).
_CIRCUIT = SleepTransistorNetwork(get_technology("45nm")).characterize(2e9)
_POWER = CorePowerModel(_CIRCUIT)


def build_controller(policy_name, sleep_mode="full", margin=10):
    config = GatingConfig(policy=policy_name, sleep_mode=sleep_mode,
                          guard_margin_cycles=margin)
    analyzer = BreakEvenAnalyzer(_CIRCUIT, config)
    predictor = make_predictor(config, 120)
    policy = make_policy(config, analyzer, predictor, 120)
    return MapgController(policy, analyzer, _POWER)


stall_stream = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 32),          # pc
        st.integers(min_value=0, max_value=31),               # bank
        st.integers(min_value=0, max_value=2000),             # stall cycles
        st.sampled_from(["row_hit", "row_closed", "row_conflict", "merged", ""]),
        st.integers(min_value=0, max_value=300),              # elapsed
    ),
    min_size=1, max_size=60)


@given(
    policy=st.sampled_from(["never", "naive", "bet_guard", "mapg",
                            "mapg_adaptive", "oracle"]),
    sleep_mode=st.sampled_from(["full", "retention", "dual"]),
    stalls=stall_stream,
)
@settings(max_examples=60, deadline=None)
def test_controller_always_tiles_exactly(policy, sleep_mode, stalls):
    """For every policy, mode, and stall stream: intervals == stall + penalty,
    penalties are bounded by the worst-case wake, and energy is finite."""
    controller = build_controller(policy, sleep_mode)
    worst_wake = max(controller.analyzer.wake_cycles_for("full"),
                     controller.analyzer.wake_cycles_for("retention"))
    cycle = 0
    for pc, bank, stall, kind, elapsed in stalls:
        outcome = controller.process_stall(
            pc=pc, bank=bank, actual_stall_cycles=stall,
            start_cycle=cycle, kind=kind, elapsed_cycles=elapsed)
        assert outcome.total_cycles == stall + outcome.penalty_cycles
        assert 0 <= outcome.penalty_cycles <= worst_wake
        assert outcome.event_energy_j >= 0.0
        cycle += outcome.total_cycles


@given(stalls=stall_stream)
@settings(max_examples=40, deadline=None)
def test_oracle_never_pays_and_never_loses(stalls):
    """Oracle gates only when the event's net saving is non-negative."""
    controller = build_controller("oracle")
    for pc, bank, stall, kind, elapsed in stalls:
        outcome = controller.process_stall(pc=pc, bank=bank,
                                           actual_stall_cycles=stall,
                                           kind=kind, elapsed_cycles=elapsed)
        assert outcome.penalty_cycles == 0
        if outcome.gated and not outcome.aborted:
            sleep_s = _CIRCUIT.cycles_to_seconds(outcome.sleep_cycles)
            saved = _POWER.leakage_power_w * sleep_s
            overhead = (outcome.event_energy_j
                        + _CIRCUIT.sleep_residual_power_w * sleep_s)
            assert saved >= overhead * 0.99


@given(
    tokens=st.integers(min_value=1, max_value=4),
    requests=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10_000),  # trigger
                  st.integers(min_value=1, max_value=50)),      # hold
        min_size=1, max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_token_arbiter_bounds_concurrent_holds(tokens, requests):
    """At no instant do more than ``tokens`` grants overlap (absent forced
    grants, which the generous wait limit here rules out)."""
    arbiter = TokenArbiter(TokenConfig(enabled=True, wake_tokens=tokens,
                                       token_wait_limit_cycles=10**9))
    ordered = sorted(requests)
    holds = []
    for index, (trigger, hold) in enumerate(ordered):
        delay = arbiter.request(core_id=index, trigger_cycle=trigger,
                                hold_cycles=hold)
        start = trigger + delay
        holds.append((start, start + hold))
    events = sorted([(start, 1) for start, __ in holds]
                    + [(end, -1) for __, end in holds])
    concurrent = 0
    for __, delta in events:
        concurrent += delta
        assert concurrent <= tokens


@st.composite
def small_traces(draw):
    ops = draw(st.lists(
        st.one_of(
            st.builds(ComputeBlock, instructions=st.integers(1, 50)),
            st.builds(MemoryAccess,
                      address=st.integers(0, (1 << 26) - 1),
                      pc=st.sampled_from([0x400000, 0x400004, 0x400008]),
                      is_write=st.booleans()),
        ),
        min_size=1, max_size=60))
    window = draw(st.sampled_from([1, 2, 4]))
    return ops, window


@given(small_traces())
@settings(max_examples=40, deadline=None)
def test_windowed_core_conserves_time(params):
    """Segments tile the core's clock exactly, for any trace and window."""
    ops, window = params
    config = CoreConfig(miss_window=window)
    l1 = CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                     associativity=2, hit_latency_cycles=2, mshr_entries=8)
    l2 = CacheConfig(name="L2", size_bytes=4096, line_bytes=64,
                     associativity=4, hit_latency_cycles=10, mshr_entries=8)
    hierarchy = MemoryHierarchy(l1, l2, DramConfig(refresh_latency_ns=0.0),
                                config.frequency_hz)
    core = WindowedCore(config, hierarchy)
    segment_cycles = 0
    covered = 0
    for segment in core.segments(ops):
        assert segment.cycles >= 0
        segment_cycles += segment.cycles
        if isinstance(segment, StallSegment):
            assert segment.elapsed_cycles >= 0
        covered += 1
    # Busy + stall segments never exceed the clock; L1 hits issue within
    # busy time already counted, so equality holds up to pipelined hits.
    assert segment_cycles <= core.cycle
    # Every cycle the clock advanced is either in a segment or an L1-hit
    # issue cycle folded into a pending-busy run that was flushed.
    assert core.cycle - segment_cycles <= sum(
        1 for op in ops if isinstance(op, MemoryAccess))