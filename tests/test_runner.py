"""Tests for the experiment runners (single- and multi-core)."""

import pytest

from repro.config import SystemConfig, TokenConfig
from repro.errors import ConfigError
from repro.sim.runner import (
    run_multicore,
    run_policy_comparison,
    run_workload,
    with_policy,
)


class TestWithPolicy:
    def test_replaces_policy_only(self):
        config = SystemConfig()
        variant = with_policy(config, "naive")
        assert variant.gating.policy == "naive"
        assert variant.dram == config.dram

    def test_extra_gating_overrides(self):
        variant = with_policy(SystemConfig(), "mapg", bet_scale=2.0)
        assert variant.gating.bet_scale == 2.0


class TestRunWorkload:
    def test_same_seed_reproducible(self):
        config = with_policy(SystemConfig(), "mapg")
        a = run_workload(config, "gcc_like", 1500, seed=5)
        b = run_workload(config, "gcc_like", 1500, seed=5)
        assert a.total_cycles == b.total_cycles
        assert a.energy_j == pytest.approx(b.energy_j)

    def test_temperature_override_increases_energy(self):
        config = with_policy(SystemConfig(), "never")
        cool = run_workload(config, "gcc_like", 1000, seed=5, temperature_c=60.0)
        hot = run_workload(config, "gcc_like", 1000, seed=5, temperature_c=110.0)
        assert hot.energy_j > cool.energy_j
        assert hot.total_cycles == cool.total_cycles


class TestPolicyComparison:
    def test_matrix_shape(self):
        matrix = run_policy_comparison(
            SystemConfig(), ["gcc_like", "mcf_like"], ["never", "naive"], 800)
        assert set(matrix) == {"gcc_like", "mcf_like"}
        assert set(matrix["gcc_like"]) == {"never", "naive"}

    def test_policies_see_identical_traces(self):
        matrix = run_policy_comparison(
            SystemConfig(), ["gcc_like"], ["never", "oracle"], 800)
        never = matrix["gcc_like"]["never"]
        oracle = matrix["gcc_like"]["oracle"]
        assert never.instructions == oracle.instructions
        assert never.offchip_stalls == oracle.offchip_stalls


class TestSeedStudy:
    def test_statistics_computed(self):
        from repro.sim.runner import run_seed_study
        config = with_policy(SystemConfig(), "mapg")
        study = run_seed_study(config, "gcc_like", 800, seeds=(1, 2, 3))
        assert len(study.savings) == 3
        assert study.mean_saving == pytest.approx(
            sum(study.savings) / 3)
        assert study.std_saving >= 0.0

    def test_single_seed_zero_std(self):
        from repro.sim.runner import run_seed_study
        config = with_policy(SystemConfig(), "mapg")
        study = run_seed_study(config, "gcc_like", 600, seeds=(5,))
        assert study.std_saving == 0.0
        assert study.std_penalty == 0.0

    def test_empty_seeds_rejected(self):
        from repro.sim.runner import run_seed_study
        with pytest.raises(ConfigError):
            run_seed_study(with_policy(SystemConfig(), "mapg"),
                           "gcc_like", 600, seeds=())


class TestMulticore:
    def test_core_count_must_match_profiles(self):
        with pytest.raises(ConfigError):
            run_multicore(SystemConfig(num_cores=2), ["gcc_like"], 500)

    def test_two_core_run_completes(self):
        config = with_policy(SystemConfig(num_cores=2), "mapg")
        result = run_multicore(config, ["mcf_like", "gcc_like"], 800)
        assert result.num_cores == 2
        assert set(result.per_core) == {0, 1}
        assert result.makespan_cycles >= max(
            r.total_cycles for r in result.per_core.values()) - 1
        assert result.total_energy_j > 0.0

    def test_tokens_engage_under_contention(self):
        config = with_policy(
            SystemConfig(num_cores=4,
                         token=TokenConfig(enabled=True, wake_tokens=1)),
            "naive")
        result = run_multicore(config, ["mcf_like"] * 4, 600, seed=3)
        assert result.wake_tokens == 1
        assert result.token_counters.get("requests", 0) > 0

    def test_tokens_disabled_reports_zero(self):
        config = with_policy(SystemConfig(num_cores=2), "naive")
        result = run_multicore(config, ["gcc_like", "gcc_like"], 500)
        assert result.wake_tokens == 0
        assert result.token_counters == {}

    def test_mean_penalty_property(self):
        config = with_policy(SystemConfig(num_cores=2), "naive")
        result = run_multicore(config, ["mcf_like", "mcf_like"], 600)
        assert result.mean_performance_penalty > 0.0
        assert result.total_penalty_cycles > 0

    def test_heterogeneous_cores(self):
        """big.LITTLE: a wide MLP core next to a blocking core, one DRAM."""
        import dataclasses
        base = with_policy(SystemConfig(num_cores=2), "mapg")
        big = base.replace(core=dataclasses.replace(base.core, miss_window=8))
        little = base.replace(core=dataclasses.replace(base.core,
                                                       miss_window=1))
        result = run_multicore(base, ["libquantum_like", "libquantum_like"],
                               800, seed=5, per_core_configs=[big, little])
        # Same trace profile/seed offsets differ, but the big core's MLP
        # must make it decisively faster than the blocking one.
        assert result.per_core[0].total_cycles < \
            0.9 * result.per_core[1].total_cycles

    def test_heterogeneous_count_mismatch_rejected(self):
        config = with_policy(SystemConfig(num_cores=2), "mapg")
        with pytest.raises(ConfigError):
            run_multicore(config, ["gcc_like", "gcc_like"], 400,
                          per_core_configs=[config])
