"""Tests for the end-to-end simulator and result objects."""

import pytest

from repro.config import GatingConfig, SystemConfig
from repro.errors import SimulationError
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator, static_offchip_latency_cycles
from repro.trace.format import ComputeBlock, MemoryAccess
from repro.workloads.synthetic import generate_trace


def make_config(policy="mapg", **gating_kwargs):
    return SystemConfig(gating=GatingConfig(policy=policy, **gating_kwargs))


class TestStaticEstimate:
    def test_static_estimate_positive_and_plausible(self):
        estimate = static_offchip_latency_cycles(SystemConfig())
        assert 50 < estimate < 500

    def test_scales_with_dram_latency(self):
        config = SystemConfig()
        slow = config.replace(dram=config.dram.scaled(2.0))
        assert static_offchip_latency_cycles(slow) == pytest.approx(
            2 * static_offchip_latency_cycles(config), abs=2)


class TestRun:
    def test_pure_compute_trace(self):
        simulator = Simulator(make_config("never"))
        result = simulator.run([ComputeBlock(1000)])
        assert result.total_cycles == 1000
        assert result.instructions == 1000
        assert result.state_cycles == {"active": 1000}
        assert result.ipc == 1.0

    def test_ledger_covers_every_cycle(self):
        simulator = Simulator(make_config("mapg"))
        trace = generate_trace("gcc_like", 3000, seed=2)
        result = simulator.run(trace)
        assert sum(result.state_cycles.values()) == result.total_cycles

    def test_single_use(self):
        simulator = Simulator(make_config("never"))
        simulator.run([ComputeBlock(10)])
        with pytest.raises(SimulationError):
            simulator.run([ComputeBlock(10)])

    def test_never_policy_has_no_sleep_or_penalty(self):
        simulator = Simulator(make_config("never"))
        result = simulator.run(generate_trace("mcf_like", 2000, seed=1))
        assert result.penalty_cycles == 0
        assert result.sleep_fraction == 0.0
        assert result.event_count == 0

    def test_gating_policy_produces_sleep_on_memory_bound(self):
        simulator = Simulator(make_config("naive"))
        result = simulator.run(generate_trace("mcf_like", 2000, seed=1))
        assert result.sleep_fraction > 0.1
        assert result.event_count > 0
        assert result.penalty_cycles > 0

    def test_stall_histogram_collects_offchip_stalls(self):
        simulator = Simulator(make_config("never"))
        result = simulator.run(generate_trace("mcf_like", 1000, seed=1))
        assert simulator.stall_histogram.count == result.offchip_stalls

    def test_memory_counters_exported(self):
        simulator = Simulator(make_config("never"))
        result = simulator.run(generate_trace("gcc_like", 1000, seed=1))
        assert "l1_accesses" in result.memory_counters
        assert "dram_accesses" in result.memory_counters

    def test_single_offchip_access_tiling(self):
        """One miss: ACTIVE issue cycle + controller intervals, exactly."""
        simulator = Simulator(make_config("naive"))
        result = simulator.run([MemoryAccess(0x10000)])
        wake = simulator.analyzer.wake_cycles
        drain = simulator.analyzer.drain_cycles
        stall = result.total_cycles - 1 - result.penalty_cycles
        assert result.penalty_cycles == wake
        assert result.state_cycles["drain"] == drain
        assert result.state_cycles["sleep"] == stall - drain
        assert result.state_cycles["wake"] == wake
        assert result.state_cycles["active"] == 1


class TestResultObject:
    def test_performance_penalty_definition(self):
        result = SimulationResult(
            workload="w", policy="naive", instructions=100,
            total_cycles=1100, penalty_cycles=100, energy_j=1.0,
            event_energy_j=0.0, event_count=0)
        assert result.baseline_cycles == 1000
        assert result.performance_penalty == pytest.approx(0.1)

    def test_compare_same_workload(self):
        base = SimulationResult(
            workload="w", policy="never", instructions=100,
            total_cycles=1000, penalty_cycles=0, energy_j=2.0,
            event_energy_j=0.0, event_count=0)
        gated = SimulationResult(
            workload="w", policy="mapg", instructions=100,
            total_cycles=1020, penalty_cycles=20, energy_j=1.5,
            event_energy_j=0.0, event_count=5)
        delta = gated.compare(base)
        assert delta.energy_saving == pytest.approx(0.25)
        assert delta.performance_penalty == pytest.approx(0.02)
        assert delta.edp_ratio == pytest.approx((1.5 * 1020) / (2.0 * 1000))

    def test_compare_rejects_different_workloads(self):
        base = SimulationResult(
            workload="a", policy="never", instructions=1, total_cycles=1,
            penalty_cycles=0, energy_j=1.0, event_energy_j=0.0, event_count=0)
        other = SimulationResult(
            workload="b", policy="mapg", instructions=1, total_cycles=1,
            penalty_cycles=0, energy_j=1.0, event_energy_j=0.0, event_count=0)
        with pytest.raises(SimulationError):
            other.compare(base)

    def test_penalty_exceeding_total_rejected(self):
        with pytest.raises(SimulationError):
            SimulationResult(
                workload="w", policy="naive", instructions=1,
                total_cycles=10, penalty_cycles=11, energy_j=1.0,
                event_energy_j=0.0, event_count=0)

    def test_stall_fraction_counts_all_idle_states(self):
        result = SimulationResult(
            workload="w", policy="naive", instructions=1,
            total_cycles=100, penalty_cycles=0, energy_j=1.0,
            event_energy_j=0.0, event_count=0,
            state_cycles={"active": 40, "stall": 20, "sleep": 30,
                          "drain": 5, "wake": 5})
        assert result.stall_fraction == pytest.approx(0.6)
        assert result.sleep_fraction == pytest.approx(0.3)
