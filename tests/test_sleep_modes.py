"""Tests for the retention sleep mode and dual-mode selection."""

import pytest

from repro.config import GatingConfig, SystemConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.controller import MapgController
from repro.core.policies import MapgPolicy
from repro.errors import ConfigError
from repro.power.gating import SleepTransistorNetwork
from repro.power.model import CorePowerModel, PowerState
from repro.predict.table import HistoryTablePredictor
from repro.sim.runner import run_workload, with_policy

STATIC = 180


class TestRetentionCircuit:
    def test_retention_wake_faster_than_full(self, tech45):
        network = SleepTransistorNetwork(tech45)
        assert network.retention_wake_latency_s() < network.wake_latency_s()

    def test_retention_leakage_between_zero_and_full(self, tech45):
        network = SleepTransistorNetwork(tech45)
        assert 0.0 < network.retention_leakage_w < network.domain_leakage_power_w
        # Quadratic shape: well below the linear fraction.
        assert network.retention_leakage_w < \
            network.RETENTION_VDD_FRACTION * network.domain_leakage_power_w

    def test_retention_droop_capped_at_clamp_swing(self, tech45):
        network = SleepTransistorNetwork(tech45)
        swing = tech45.vdd_v - network.retention_voltage_v
        assert network.retention_droop_v(network.decay_tau_s * 100) == \
            pytest.approx(swing)

    def test_retention_rush_cheaper_than_full_for_long_sleep(self, tech45):
        network = SleepTransistorNetwork(tech45)
        long_sleep = network.decay_tau_s * 10
        assert network.retention_rush_energy_j(long_sleep) < \
            network.rush_charge_energy_j(long_sleep)

    def test_retention_bet_is_root(self, tech45):
        network = SleepTransistorNetwork(tech45)
        bet = network.retention_breakeven_time_s()
        assert abs(network.retention_net_saving_j(bet)) < 1e-12

    def test_characterize_exposes_retention_fields(self, circuit45):
        assert circuit45.retention_wake_cycles < circuit45.wake_cycles
        assert circuit45.retention_wake_cycles > 0
        assert circuit45.retention_sleep_power_w > circuit45.sleep_residual_power_w


class TestPowerModel:
    def test_retention_state_power_between_sleep_and_stall(self, power_model):
        sleep = power_model.state_power_w(PowerState.SLEEP)
        retention = power_model.state_power_w(PowerState.SLEEP_RETENTION)
        stall = power_model.state_power_w(PowerState.STALL)
        assert sleep < retention < stall

    def test_retention_event_energy_cheaper_for_long_sleep(self, power_model):
        full = power_model.gating_event_energy_j(10_000, mode="full")
        retention = power_model.gating_event_energy_j(10_000, mode="retention")
        assert retention < full

    def test_unknown_mode_rejected(self, power_model):
        with pytest.raises(ConfigError):
            power_model.gating_event_energy_j(100, mode="drowsy")


class TestAnalyzerModes:
    def test_mode_specific_thresholds(self, circuit45):
        analyzer = BreakEvenAnalyzer(circuit45, GatingConfig())
        assert analyzer.wake_cycles_for("retention") < analyzer.wake_cycles_for("full")
        assert analyzer.bet_cycles_for("retention") != analyzer.bet_cycles_for("full")

    def test_unknown_mode_rejected(self, circuit45):
        analyzer = BreakEvenAnalyzer(circuit45, GatingConfig())
        with pytest.raises(ConfigError):
            analyzer.bet_cycles_for("nap")
        with pytest.raises(ConfigError):
            analyzer.wake_cycles_for("nap")


class TestModeSelection:
    def make_policy(self, circuit, sleep_mode):
        config = GatingConfig(policy="mapg", sleep_mode=sleep_mode)
        analyzer = BreakEvenAnalyzer(circuit, config)
        return MapgPolicy(analyzer, HistoryTablePredictor(initial_cycles=STATIC),
                          config, STATIC)

    def train(self, policy, latency):
        for __ in range(10):
            policy.observe(0x400000, 0, latency)

    def test_full_mode_only_full(self, circuit45):
        policy = self.make_policy(circuit45, "full")
        self.train(policy, 300)
        assert policy.decide(0x400000, 0, 300).mode == "full"

    def test_retention_mode_only_retention(self, circuit45):
        policy = self.make_policy(circuit45, "retention")
        self.train(policy, 300)
        assert policy.decide(0x400000, 0, 300).mode == "retention"

    def test_dual_confident_long_stall_goes_full(self, circuit45):
        policy = self.make_policy(circuit45, "dual")
        self.train(policy, 300)
        decision = policy.decide(0x400000, 0, 300)
        assert decision.gate
        assert decision.mode == "full"

    def test_dual_cold_start_goes_retention(self, circuit45):
        policy = self.make_policy(circuit45, "dual")
        decision = policy.decide(0x999000, 0, 300)  # untrained pc
        assert decision.gate
        assert decision.mode == "retention"

    def test_config_rejects_unknown_sleep_mode(self):
        with pytest.raises(ConfigError):
            GatingConfig(sleep_mode="drowsy")


class TestControllerIntegration:
    def test_retention_intervals_use_retention_state(self, circuit45, power_model):
        config = GatingConfig(policy="mapg", sleep_mode="retention")
        analyzer = BreakEvenAnalyzer(circuit45, config)
        policy = MapgPolicy(analyzer, HistoryTablePredictor(initial_cycles=STATIC),
                            config, STATIC)
        controller = MapgController(policy, analyzer, power_model)
        outcome = controller.process_stall(pc=0, bank=0, actual_stall_cycles=300)
        states = {state for state, __ in outcome.intervals}
        assert PowerState.SLEEP_RETENTION in states
        assert PowerState.SLEEP not in states
        assert controller.counters.get("gated_retention") == 1


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self):
        config = SystemConfig()
        base = run_workload(with_policy(config, "never"), "mcf_like", 3000, seed=7)
        results = {"never": base}
        for mode in ("full", "retention", "dual"):
            results[mode] = run_workload(
                with_policy(config, "mapg", sleep_mode=mode),
                "mcf_like", 3000, seed=7)
        return results

    def test_retention_penalty_not_worse_than_full(self, runs):
        assert runs["retention"].penalty_cycles <= runs["full"].penalty_cycles

    def test_full_saves_at_least_as_much_as_retention(self, runs):
        save_full = runs["never"].energy_j - runs["full"].energy_j
        save_ret = runs["never"].energy_j - runs["retention"].energy_j
        assert save_full >= save_ret * 0.98

    def test_dual_uses_both_modes(self, runs):
        counters = runs["dual"].controller_counters
        assert counters.get("gated_full", 0) > 0
        assert counters.get("gated_retention", 0) > 0

    def test_retention_cycles_ledgered_separately(self, runs):
        assert runs["retention"].state_cycles.get("sleep_retention", 0) > 0
        assert runs["retention"].state_cycles.get("sleep", 0) == 0
