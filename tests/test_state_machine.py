"""Tests for the power-gate state machine."""

import itertools

import pytest

from repro.core.state import _LEGAL_TRANSITIONS, PgState, \
    PowerGateStateMachine, power_state_of
from repro.errors import SimulationError
from repro.power.model import PowerState

# Every ordered pair that is NOT a legal FSM edge, computed from the
# transition table itself so the test can never drift out of sync with it.
# (Self-pairs are excluded: transition() treats them as no-op boundaries.)
ILLEGAL_PAIRS = [
    (source, target)
    for source, target in itertools.product(PgState, PgState)
    if source is not target and target not in _LEGAL_TRANSITIONS[source]
]


def drive_to(machine, goal):
    """Walk the machine to ``goal`` along a shortest legal path."""
    frontier = [(machine.state, ())]
    seen = {machine.state}
    while frontier:
        state, path = frontier.pop(0)
        if state is goal:
            for cycle, step in enumerate(path, start=1):
                machine.transition(step, cycle * 10)
            return
        for successor in sorted(_LEGAL_TRANSITIONS[state],
                                key=lambda s: s.value):
            if successor not in seen:
                seen.add(successor)
                frontier.append((successor, path + (successor,)))
    raise AssertionError(f"{goal} unreachable from {machine.state}")


class TestTransitions:
    def test_full_gating_cycle_legal(self):
        machine = PowerGateStateMachine()
        for state, cycle in ((PgState.STALL, 10), (PgState.DRAIN, 20),
                             (PgState.SLEEP, 34), (PgState.WAKE, 150),
                             (PgState.ACTIVE, 167)):
            machine.transition(state, cycle)
        assert machine.state is PgState.ACTIVE

    def test_token_wait_path_legal(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.DRAIN, 10)
        machine.transition(PgState.SLEEP, 24)
        machine.transition(PgState.TOKEN_WAIT, 100)
        machine.transition(PgState.WAKE, 130)
        machine.transition(PgState.STALL, 147)

    def test_drain_abort_to_stall_legal(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.DRAIN, 10)
        machine.transition(PgState.STALL, 15)

    def test_sleep_to_active_illegal(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.DRAIN, 10)
        machine.transition(PgState.SLEEP, 24)
        with pytest.raises(SimulationError, match="sleep -> active"):
            machine.transition(PgState.ACTIVE, 100)

    def test_active_to_wake_illegal(self):
        machine = PowerGateStateMachine()
        with pytest.raises(SimulationError):
            machine.transition(PgState.WAKE, 10)

    def test_self_transition_is_noop(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.ACTIVE, 50)
        assert machine.ledger.transitions == 0

    def test_can_transition_query(self):
        machine = PowerGateStateMachine()
        assert machine.can_transition(PgState.STALL)
        assert not machine.can_transition(PgState.SLEEP)


class TestIllegalTransitionsExhaustive:
    def test_every_state_is_reachable(self):
        for goal in PgState:
            machine = PowerGateStateMachine()
            drive_to(machine, goal)
            assert machine.state is goal

    @pytest.mark.parametrize(
        "source,target", ILLEGAL_PAIRS,
        ids=[f"{s.value}-to-{t.value}" for s, t in ILLEGAL_PAIRS])
    def test_illegal_transition_raises(self, source, target):
        machine = PowerGateStateMachine()
        drive_to(machine, source)
        assert not machine.can_transition(target)
        with pytest.raises(SimulationError,
                           match=f"{source.value} -> {target.value}"):
            machine.transition(target, 10_000)

    def test_complement_covers_the_whole_state_square(self):
        legal = sum(len(targets) for targets in _LEGAL_TRANSITIONS.values())
        states = len(PgState)
        assert len(ILLEGAL_PAIRS) == states * (states - 1) - legal


class TestLedgerIntegration:
    def test_time_in_states(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.STALL, 100)
        machine.transition(PgState.ACTIVE, 150)
        machine.finish(200)
        assert machine.time_in(PgState.ACTIVE) == 150
        assert machine.time_in(PgState.STALL) == 50

    def test_finish_closes_ledger(self):
        machine = PowerGateStateMachine()
        machine.finish(10)
        with pytest.raises(SimulationError):
            machine.transition(PgState.STALL, 20)


class TestPowerStateMapping:
    def test_every_pg_state_maps(self):
        for state in PgState:
            assert isinstance(power_state_of(state), PowerState)

    def test_sleep_maps_to_sleep(self):
        assert power_state_of(PgState.SLEEP) is PowerState.SLEEP
