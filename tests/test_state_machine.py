"""Tests for the power-gate state machine."""

import pytest

from repro.core.state import PgState, PowerGateStateMachine, power_state_of
from repro.errors import SimulationError
from repro.power.model import PowerState


class TestTransitions:
    def test_full_gating_cycle_legal(self):
        machine = PowerGateStateMachine()
        for state, cycle in ((PgState.STALL, 10), (PgState.DRAIN, 20),
                             (PgState.SLEEP, 34), (PgState.WAKE, 150),
                             (PgState.ACTIVE, 167)):
            machine.transition(state, cycle)
        assert machine.state is PgState.ACTIVE

    def test_token_wait_path_legal(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.DRAIN, 10)
        machine.transition(PgState.SLEEP, 24)
        machine.transition(PgState.TOKEN_WAIT, 100)
        machine.transition(PgState.WAKE, 130)
        machine.transition(PgState.STALL, 147)

    def test_drain_abort_to_stall_legal(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.DRAIN, 10)
        machine.transition(PgState.STALL, 15)

    def test_sleep_to_active_illegal(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.DRAIN, 10)
        machine.transition(PgState.SLEEP, 24)
        with pytest.raises(SimulationError, match="sleep -> active"):
            machine.transition(PgState.ACTIVE, 100)

    def test_active_to_wake_illegal(self):
        machine = PowerGateStateMachine()
        with pytest.raises(SimulationError):
            machine.transition(PgState.WAKE, 10)

    def test_self_transition_is_noop(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.ACTIVE, 50)
        assert machine.ledger.transitions == 0

    def test_can_transition_query(self):
        machine = PowerGateStateMachine()
        assert machine.can_transition(PgState.STALL)
        assert not machine.can_transition(PgState.SLEEP)


class TestLedgerIntegration:
    def test_time_in_states(self):
        machine = PowerGateStateMachine()
        machine.transition(PgState.STALL, 100)
        machine.transition(PgState.ACTIVE, 150)
        machine.finish(200)
        assert machine.time_in(PgState.ACTIVE) == 150
        assert machine.time_in(PgState.STALL) == 50

    def test_finish_closes_ledger(self):
        machine = PowerGateStateMachine()
        machine.finish(10)
        with pytest.raises(SimulationError):
            machine.transition(PgState.STALL, 20)


class TestPowerStateMapping:
    def test_every_pg_state_maps(self):
        for state in PgState:
            assert isinstance(power_state_of(state), PowerState)

    def test_sleep_maps_to_sleep(self):
        assert power_state_of(PgState.SLEEP) is PowerState.SLEEP
