"""Tests for repro.stats: counters, running means, histograms, intervals."""

import pytest

from repro.errors import SimulationError
from repro.stats import CounterSet, Histogram, IntervalAccumulator, RunningMean
from repro.stats.counters import geometric_mean


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("hits")
        counters.add("hits", 2)
        assert counters.get("hits") == 3

    def test_untouched_counter_is_zero(self):
        assert CounterSet().get("nothing") == 0.0

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1)

    def test_ratio(self):
        counters = CounterSet()
        counters.add("hits", 3)
        counters.add("accesses", 4)
        assert counters.ratio("hits", "accesses") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        counters = CounterSet()
        counters.add("hits", 3)
        assert counters.ratio("hits", "accesses") == 0.0

    def test_merge_accumulates(self):
        a, b = CounterSet(), CounterSet()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 5)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 5

    def test_items_sorted(self):
        counters = CounterSet()
        counters.add("zeta")
        counters.add("alpha")
        assert [name for name, __ in counters.items()] == ["alpha", "zeta"]

    def test_contains_and_len(self):
        counters = CounterSet()
        counters.add("x")
        assert "x" in counters
        assert "y" not in counters
        assert len(counters) == 1


class TestRunningMean:
    def test_mean_of_known_values(self):
        stream = RunningMean()
        for value in (1.0, 2.0, 3.0, 4.0):
            stream.observe(value)
        assert stream.mean == pytest.approx(2.5)
        assert stream.count == 4

    def test_variance_population(self):
        stream = RunningMean()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stream.observe(value)
        assert stream.variance == pytest.approx(4.0)
        assert stream.stddev == pytest.approx(2.0)

    def test_empty_stream_zeroes(self):
        stream = RunningMean()
        assert stream.mean == 0.0
        assert stream.variance == 0.0

    def test_single_value_zero_variance(self):
        stream = RunningMean()
        stream.observe(7.0)
        assert stream.variance == 0.0

    def test_merge_matches_combined_stream(self):
        left, right, combined = RunningMean(), RunningMean(), RunningMean()
        data_left = [1.0, 5.0, 2.0]
        data_right = [10.0, 0.5, 3.0, 8.0]
        for value in data_left:
            left.observe(value)
            combined.observe(value)
        for value in data_right:
            right.observe(value)
            combined.observe(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)

    def test_merge_into_empty(self):
        left, right = RunningMean(), RunningMean()
        right.observe(4.0)
        left.merge(right)
        assert left.mean == pytest.approx(4.0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean({"a": 2.0, "b": 8.0}) == pytest.approx(4.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean({})

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean({"a": 0.0})


class TestHistogram:
    def test_bucket_assignment(self):
        histogram = Histogram([0.0, 10.0, 20.0])
        histogram.observe(5.0)
        histogram.observe(15.0)
        histogram.observe(15.0)
        counts = {(low, high): n for low, high, n in histogram.bucket_counts()}
        assert counts[(0.0, 10.0)] == 1
        assert counts[(10.0, 20.0)] == 2

    def test_underflow_overflow(self):
        histogram = Histogram([0.0, 10.0])
        histogram.observe(-5.0)
        histogram.observe(100.0)
        assert histogram.underflow == 1
        assert histogram.overflow == 1

    def test_boundary_goes_to_upper_bucket(self):
        histogram = Histogram([0.0, 10.0, 20.0])
        histogram.observe(10.0)
        counts = {(low, high): n for low, high, n in histogram.bucket_counts()}
        assert counts[(10.0, 20.0)] == 1

    def test_summary_statistics(self):
        histogram = Histogram([0.0, 100.0])
        for value in (10.0, 20.0, 30.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(20.0)
        assert histogram.min == 10.0
        assert histogram.max == 30.0

    def test_percentile_exact_with_samples(self):
        histogram = Histogram([0.0, 200.0])
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_percentile_estimate_without_samples(self):
        histogram = Histogram([0.0, 10.0, 20.0], keep_samples=False)
        for value in (1.0, 2.0, 3.0, 11.0, 12.0, 13.0):
            histogram.observe(value)
        # Median should sit near the 0-10/10-20 boundary.
        assert 5.0 <= histogram.percentile(50) <= 15.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram([0.0, 1.0]).percentile(101)

    def test_linear_constructor(self):
        histogram = Histogram.linear(0.0, 100.0, 10)
        assert len(histogram.bucket_counts()) == 10

    def test_exponential_constructor(self):
        histogram = Histogram.exponential(1.0, 2.0, 4)
        edges = [low for low, __, __ in histogram.bucket_counts()]
        assert edges == pytest.approx([1.0, 2.0, 4.0, 8.0])

    def test_exponential_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            Histogram.exponential(1.0, 1.0, 4)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram([0.0, 5.0, 5.0])

    def test_normalized_sums_to_one_in_range(self):
        histogram = Histogram([0.0, 10.0, 20.0])
        for value in (1.0, 5.0, 15.0, 19.0):
            histogram.observe(value)
        assert sum(histogram.normalized().values()) == pytest.approx(1.0)

    def test_observe_many(self):
        histogram = Histogram([0.0, 10.0])
        histogram.observe_many([1.0, 2.0, 3.0])
        assert histogram.count == 3

    def test_weighted_observe(self):
        histogram = Histogram([0.0, 10.0])
        histogram.observe(5.0, count=4)
        assert histogram.count == 4


class TestIntervalAccumulator:
    def test_basic_accounting(self):
        acc = IntervalAccumulator("active")
        acc.switch("stall", 100)
        acc.switch("active", 150)
        acc.close(200)
        assert acc.total("active") == 150
        assert acc.total("stall") == 50
        assert acc.grand_total() == 200

    def test_same_state_switch_is_noop(self):
        acc = IntervalAccumulator("active")
        acc.switch("active", 50)
        assert acc.transitions == 0

    def test_time_backwards_rejected(self):
        acc = IntervalAccumulator("active")
        acc.switch("stall", 100)
        with pytest.raises(SimulationError):
            acc.switch("active", 50)

    def test_close_backwards_rejected(self):
        acc = IntervalAccumulator("active", start_cycle=100)
        with pytest.raises(SimulationError):
            acc.close(50)

    def test_switch_after_close_rejected(self):
        acc = IntervalAccumulator("active")
        acc.close(10)
        with pytest.raises(SimulationError):
            acc.switch("stall", 20)

    def test_double_close_rejected(self):
        acc = IntervalAccumulator("active")
        acc.close(10)
        with pytest.raises(SimulationError):
            acc.close(20)

    def test_records_kept_and_contiguous(self):
        acc = IntervalAccumulator("a", keep_records=True)
        acc.switch("b", 10)
        acc.switch("c", 25)
        acc.close(40)
        records = acc.records()
        assert [(r.state, r.start, r.end) for r in records] == [
            ("a", 0, 10), ("b", 10, 25), ("c", 25, 40)]
        acc.verify_contiguous()

    def test_records_unavailable_by_default(self):
        acc = IntervalAccumulator("a")
        acc.close(5)
        with pytest.raises(SimulationError):
            acc.records()

    def test_zero_length_interval_not_recorded(self):
        acc = IntervalAccumulator("a", keep_records=True)
        acc.switch("b", 0)
        acc.close(10)
        assert [r.state for r in acc.records()] == ["b"]
