"""Tests for the TAP token arbiter."""

import pytest

from repro.config import TokenConfig
from repro.core.token import TokenArbiter
from repro.errors import SimulationError


def make_arbiter(tokens=2, limit=1000):
    return TokenArbiter(TokenConfig(enabled=True, wake_tokens=tokens,
                                    token_wait_limit_cycles=limit))


class TestGrants:
    def test_free_token_granted_immediately(self):
        arbiter = make_arbiter(tokens=2)
        assert arbiter.request(core_id=0, trigger_cycle=100, hold_cycles=20) == 0

    def test_concurrent_requests_up_to_token_count(self):
        arbiter = make_arbiter(tokens=3)
        delays = [arbiter.request(core_id=i, trigger_cycle=50, hold_cycles=20)
                  for i in range(3)]
        assert delays == [0, 0, 0]

    def test_excess_request_deferred_until_release(self):
        arbiter = make_arbiter(tokens=1)
        arbiter.request(core_id=0, trigger_cycle=100, hold_cycles=30)
        delay = arbiter.request(core_id=1, trigger_cycle=110, hold_cycles=30)
        assert delay == 20  # token frees at 130

    def test_serialized_chain(self):
        arbiter = make_arbiter(tokens=1)
        delays = [arbiter.request(core_id=i, trigger_cycle=0, hold_cycles=10)
                  for i in range(4)]
        assert delays == [0, 10, 20, 30]

    def test_token_reusable_after_release(self):
        arbiter = make_arbiter(tokens=1)
        arbiter.request(core_id=0, trigger_cycle=0, hold_cycles=10)
        assert arbiter.request(core_id=1, trigger_cycle=50, hold_cycles=10) == 0


class TestWaitLimit:
    def test_forced_grant_at_limit(self):
        arbiter = make_arbiter(tokens=1, limit=5)
        arbiter.request(core_id=0, trigger_cycle=0, hold_cycles=100)
        delay = arbiter.request(core_id=1, trigger_cycle=0, hold_cycles=100)
        assert delay == 5
        assert arbiter.counters.get("forced_grants") == 1

    def test_counters_distinguish_deferred_and_forced(self):
        arbiter = make_arbiter(tokens=1, limit=1000)
        arbiter.request(core_id=0, trigger_cycle=0, hold_cycles=30)
        arbiter.request(core_id=1, trigger_cycle=0, hold_cycles=30)
        assert arbiter.counters.get("deferred_grants") == 1
        assert arbiter.counters.get("forced_grants") == 0


class TestBookkeeping:
    def test_out_of_order_requests_counted_not_fatal(self):
        arbiter = make_arbiter(tokens=2)
        arbiter.request(core_id=0, trigger_cycle=100, hold_cycles=10)
        arbiter.request(core_id=1, trigger_cycle=50, hold_cycles=10)
        assert arbiter.counters.get("out_of_order_requests") == 1

    def test_negative_inputs_rejected(self):
        arbiter = make_arbiter()
        with pytest.raises(SimulationError):
            arbiter.request(core_id=0, trigger_cycle=-1, hold_cycles=10)
        with pytest.raises(SimulationError):
            arbiter.request(core_id=0, trigger_cycle=0, hold_cycles=-1)

    def test_max_concurrent_wakes(self):
        assert make_arbiter(tokens=4).max_concurrent_wakes == 4
