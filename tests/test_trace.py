"""Tests for the trace format and serialization."""

import io

import pytest

from repro.errors import TraceError
from repro.trace import (
    ComputeBlock,
    MemoryAccess,
    read_trace,
    read_trace_file,
    trace_summary,
    write_trace,
    write_trace_file,
)


class TestRecords:
    def test_compute_block_requires_positive_count(self):
        with pytest.raises(TraceError):
            ComputeBlock(instructions=0)

    def test_memory_access_rejects_negative_address(self):
        with pytest.raises(TraceError):
            MemoryAccess(address=-1)

    def test_memory_access_rejects_negative_pc(self):
        with pytest.raises(TraceError):
            MemoryAccess(address=0, pc=-4)

    def test_records_are_hashable_value_objects(self):
        assert MemoryAccess(64, pc=8) == MemoryAccess(64, pc=8)
        assert len({ComputeBlock(3), ComputeBlock(3)}) == 1


class TestSummary:
    def test_counts(self):
        ops = [ComputeBlock(10), MemoryAccess(0, is_write=True),
               ComputeBlock(5), MemoryAccess(64)]
        summary = trace_summary(ops)
        assert summary["instructions"] == 17
        assert summary["memory_accesses"] == 2
        assert summary["writes"] == 1
        assert summary["ops"] == 4

    def test_empty_trace(self):
        summary = trace_summary([])
        assert summary["instructions"] == 0
        assert summary["ops"] == 0

    def test_rejects_foreign_records(self):
        with pytest.raises(TraceError):
            trace_summary([object()])


SAMPLE_OPS = [
    ComputeBlock(12),
    MemoryAccess(address=0x1000, pc=0x400010, is_write=False),
    MemoryAccess(address=0xDEADBEEF00, pc=0x400020, is_write=True),
    ComputeBlock(1),
]


class TestJsonl:
    def test_roundtrip(self):
        buffer = io.StringIO()
        count = write_trace(SAMPLE_OPS, buffer)
        assert count == len(SAMPLE_OPS)
        buffer.seek(0)
        assert list(read_trace(buffer)) == SAMPLE_OPS

    def test_blank_lines_skipped(self):
        buffer = io.StringIO('{"kind":"compute","n":3}\n\n\n')
        assert list(read_trace(buffer)) == [ComputeBlock(3)]

    def test_invalid_json_line_reported_with_number(self):
        buffer = io.StringIO('{"kind":"compute","n":3}\nnot json\n')
        with pytest.raises(TraceError, match="line 2"):
            list(read_trace(buffer))

    def test_unknown_kind_rejected(self):
        buffer = io.StringIO('{"kind":"branch"}\n')
        with pytest.raises(TraceError):
            list(read_trace(buffer))

    def test_non_object_record_rejected(self):
        buffer = io.StringIO("[1,2]\n")
        with pytest.raises(TraceError):
            list(read_trace(buffer))


class TestFiles:
    def test_jsonl_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_file(SAMPLE_OPS, path)
        assert read_trace_file(path) == SAMPLE_OPS

    def test_binary_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_trace_file(SAMPLE_OPS, path)
        assert read_trace_file(path) == SAMPLE_OPS

    def test_binary_smaller_than_text_for_long_traces(self, tmp_path):
        ops = [MemoryAccess(address=64 * i, pc=0x400000) for i in range(500)]
        text_path = tmp_path / "t.jsonl"
        bin_path = tmp_path / "t.bin"
        write_trace_file(ops, text_path)
        write_trace_file(ops, bin_path)
        assert bin_path.stat().st_size < text_path.stat().st_size

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            write_trace_file(SAMPLE_OPS, tmp_path / "trace.csv")
        with pytest.raises(TraceError):
            read_trace_file(tmp_path / "trace.csv")

    def test_truncated_binary_detected(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_trace_file(SAMPLE_OPS, path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceError, match="truncated"):
            read_trace_file(path)

    def test_unknown_binary_kind_detected(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_bytes(b"\xff" + b"\x00" * 8)
        with pytest.raises(TraceError, match="kind"):
            read_trace_file(path)

    def test_empty_binary_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        assert read_trace_file(path) == []
