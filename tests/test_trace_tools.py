"""Tests for trace transformation tools."""

import pytest

from repro.errors import TraceError
from repro.trace.format import ComputeBlock, MemoryAccess, trace_summary
from repro.trace.tools import (
    interleave,
    remap_addresses,
    scale_compute,
    skip,
    truncate,
    window_summaries,
)

OPS = [ComputeBlock(10), MemoryAccess(0x1000, pc=4),
       ComputeBlock(5), MemoryAccess(0x2000, pc=8, is_write=True)]


class TestTruncateSkip:
    def test_truncate(self):
        assert list(truncate(OPS, 2)) == OPS[:2]

    def test_truncate_beyond_end(self):
        assert list(truncate(OPS, 100)) == OPS

    def test_truncate_zero(self):
        assert list(truncate(OPS, 0)) == []

    def test_skip(self):
        assert list(skip(OPS, 2)) == OPS[2:]

    def test_skip_all(self):
        assert list(skip(OPS, 100)) == []

    def test_negative_rejected(self):
        with pytest.raises(TraceError):
            list(truncate(OPS, -1))
        with pytest.raises(TraceError):
            list(skip(OPS, -1))

    def test_compose_skip_truncate(self):
        assert list(truncate(skip(OPS, 1), 2)) == OPS[1:3]


class TestRemap:
    def test_addresses_shifted_pcs_kept(self):
        remapped = list(remap_addresses(OPS, 0x10_0000))
        accesses = [op for op in remapped if isinstance(op, MemoryAccess)]
        assert accesses[0].address == 0x1000 + 0x10_0000
        assert accesses[0].pc == 4
        assert accesses[1].is_write

    def test_compute_blocks_untouched(self):
        remapped = list(remap_addresses(OPS, 64))
        assert remapped[0] == OPS[0]

    def test_negative_result_rejected(self):
        with pytest.raises(TraceError):
            list(remap_addresses(OPS, -0x100_0000))


class TestInterleave:
    def test_round_robin_order(self):
        a = [ComputeBlock(1), ComputeBlock(2)]
        b = [ComputeBlock(10), ComputeBlock(20)]
        merged = list(interleave([a, b]))
        assert merged == [ComputeBlock(1), ComputeBlock(10),
                          ComputeBlock(2), ComputeBlock(20)]

    def test_chunked(self):
        a = [ComputeBlock(1), ComputeBlock(2), ComputeBlock(3)]
        b = [ComputeBlock(10)]
        merged = list(interleave([a, b], chunk_ops=2))
        assert merged == [ComputeBlock(1), ComputeBlock(2),
                          ComputeBlock(10), ComputeBlock(3)]

    def test_uneven_lengths_drain_completely(self):
        a = [ComputeBlock(1)] * 5
        b = [ComputeBlock(2)] * 2
        merged = list(interleave([a, b]))
        assert len(merged) == 7

    def test_preserves_total_instruction_count(self):
        a = OPS
        b = list(remap_addresses(OPS, 1 << 30))
        merged = list(interleave([a, b]))
        assert trace_summary(merged)["instructions"] == \
            2 * trace_summary(OPS)["instructions"]

    def test_empty_input_rejected(self):
        with pytest.raises(TraceError):
            list(interleave([]))
        with pytest.raises(TraceError):
            list(interleave([OPS], chunk_ops=0))


class TestScaleCompute:
    def test_doubling(self):
        scaled = list(scale_compute(OPS, 2.0))
        assert scaled[0] == ComputeBlock(20)
        assert scaled[1] == OPS[1]  # memory untouched

    def test_shrink_clamps_to_one(self):
        scaled = list(scale_compute([ComputeBlock(1)], 0.01))
        assert scaled == [ComputeBlock(1)]

    def test_op_count_preserved(self):
        assert len(list(scale_compute(OPS, 3.7))) == len(OPS)

    def test_zero_factor_rejected(self):
        with pytest.raises(TraceError):
            list(scale_compute(OPS, 0.0))


class TestWindows:
    def test_window_counts(self):
        windows = window_summaries(OPS, window_ops=2)
        assert len(windows) == 2
        assert windows[0] == {"instructions": 11, "memory_accesses": 1,
                              "writes": 0, "ops": 2}
        assert windows[1]["writes"] == 1

    def test_partial_final_window(self):
        windows = window_summaries(OPS, window_ops=3)
        assert len(windows) == 2
        assert windows[1]["ops"] == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(TraceError):
            window_summaries(OPS, 0)

    def test_foreign_record_rejected(self):
        with pytest.raises(TraceError):
            window_summaries([object()], 2)
