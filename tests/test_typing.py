"""Static type checking of the strict-listed modules.

The ``py.typed`` marker ships with the package, so the annotations are a
public API; this test makes them load-bearing.  ``pyproject.toml``'s
``[tool.mypy]`` section lists the modules that must pass ``mypy --strict``
(the list is meant to grow).  The test skips when mypy is not installed
(the offline dev container); CI installs mypy and runs it both here and as
a dedicated workflow step.
"""

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO_ROOT = Path(__file__).parent.parent


def test_strict_modules_pass_mypy():
    # No file arguments: mypy picks up `files` from [tool.mypy].
    stdout, stderr, exit_code = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml")])
    assert exit_code == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"
