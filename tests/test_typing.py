"""Static type checking of the strict-listed modules.

The ``py.typed`` marker ships with the package, so the annotations are a
public API; this test makes them load-bearing.  ``pyproject.toml``'s
``[tool.mypy]`` section lists the modules that must pass ``mypy --strict``
(the list is meant to grow).  The test skips when mypy is not installed
(the offline dev container); CI installs mypy and runs it both here and as
a dedicated workflow step.
"""

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO_ROOT = Path(__file__).parent.parent


def test_strict_modules_pass_mypy():
    # No file arguments: mypy picks up `files` from [tool.mypy].
    stdout, stderr, exit_code = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml")])
    assert exit_code == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"


def test_strict_list_covers_config_and_events():
    """The strict list must keep growing, never shrink.

    ``repro.config`` and ``repro.events`` were promoted alongside the
    whole-program linter (their field names and signatures are what CFG01
    and EVT01 reason about); this guards against them silently dropping
    back out of the list.
    """
    pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    for module_path in ("src/repro/config.py", "src/repro/events.py"):
        assert module_path in pyproject, \
            f"{module_path} missing from [tool.mypy] files"
