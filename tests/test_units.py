"""Tests for repro.units: conversions and SI formatting."""

import math

import pytest

from repro.errors import ConfigError
from repro.units import (
    GHZ,
    NS,
    cycles_to_seconds,
    energy_joules,
    format_si,
    seconds_to_cycles,
    seconds_to_cycles_ceil,
)


class TestCycleConversions:
    def test_cycles_to_seconds_at_1ghz(self):
        assert cycles_to_seconds(1_000_000_000, 1 * GHZ) == pytest.approx(1.0)

    def test_cycles_to_seconds_at_2ghz(self):
        assert cycles_to_seconds(2, 2 * GHZ) == pytest.approx(1e-9)

    def test_seconds_to_cycles_roundtrip(self):
        assert seconds_to_cycles(cycles_to_seconds(123, 2 * GHZ), 2 * GHZ) == pytest.approx(123)

    def test_ceil_rounds_partial_cycles_up(self):
        # 3.2 cycles of latency occupies 4 clock edges.
        assert seconds_to_cycles_ceil(1.6 * NS, 2 * GHZ) == 4

    def test_ceil_exact_cycle_count_not_inflated(self):
        assert seconds_to_cycles_ceil(2.0 * NS, 2 * GHZ) == 4

    def test_ceil_zero(self):
        assert seconds_to_cycles_ceil(0.0, 2 * GHZ) == 0

    def test_zero_frequency_rejected(self):
        with pytest.raises(ConfigError):
            cycles_to_seconds(1, 0.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigError):
            seconds_to_cycles(1.0, -1.0)


class TestEnergy:
    def test_energy_is_power_times_time(self):
        assert energy_joules(2.0, 3.0) == pytest.approx(6.0)

    def test_zero_duration_zero_energy(self):
        assert energy_joules(5.0, 0.0) == 0.0


class TestFormatSi:
    def test_nanoseconds(self):
        assert format_si(2.5e-9, "s") == "2.5 ns"

    def test_milliwatts(self):
        assert format_si(3.0e-3, "W") == "3 mW"

    def test_unit_scale(self):
        assert format_si(42.0, "J") == "42 J"

    def test_zero(self):
        assert format_si(0.0, "W") == "0 W"

    def test_negative_value_keeps_sign(self):
        assert format_si(-1.5e-9, "s").startswith("-1.5")

    def test_giga(self):
        assert format_si(2e9, "Hz") == "2 GHz"

    def test_tiny_value_falls_back_to_scientific(self):
        text = format_si(1e-21, "s")
        assert "e-21" in text

    def test_precision_control(self):
        assert format_si(math.pi * NS, "s", precision=5) == "3.1416 ns"
