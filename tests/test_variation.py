"""Tests for die-to-die leakage variation."""

import math

import pytest

from repro.errors import ConfigError
from repro.power.variation import LeakageVariationModel, _probit


class TestProbit:
    def test_median_is_zero(self):
        assert _probit(0.5) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("q,z", [(0.8413, 1.0), (0.9772, 2.0),
                                     (0.1587, -1.0), (0.0228, -2.0)])
    def test_known_quantiles(self, q, z):
        assert _probit(q) == pytest.approx(z, abs=2e-3)

    def test_tails(self):
        assert _probit(0.001) < -3.0
        assert _probit(0.999) > 3.0

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            _probit(0.0)
        with pytest.raises(ConfigError):
            _probit(1.0)


class TestVariationModel:
    def test_deterministic_per_seed(self, tech45):
        a = LeakageVariationModel(tech45, seed=9).sample_population(20)
        b = LeakageVariationModel(tech45, seed=9).sample_population(20)
        assert [d.leakage_multiplier for d in a] == \
            [d.leakage_multiplier for d in b]

    def test_median_near_one(self, tech45):
        model = LeakageVariationModel(tech45, sigma_log=0.3, seed=3)
        samples = sorted(model.sample_multiplier() for __ in range(2001))
        assert samples[1000] == pytest.approx(1.0, rel=0.1)

    def test_zero_sigma_degenerates_to_nominal(self, tech45):
        model = LeakageVariationModel(tech45, sigma_log=0.0, seed=3)
        assert all(model.sample_multiplier() == pytest.approx(1.0)
                   for __ in range(10))

    def test_negative_sigma_rejected(self, tech45):
        with pytest.raises(ConfigError):
            LeakageVariationModel(tech45, sigma_log=-0.1)

    def test_population_size_validated(self, tech45):
        with pytest.raises(ConfigError):
            LeakageVariationModel(tech45).sample_population(0)

    def test_percentile_multiplier_analytic(self, tech45):
        model = LeakageVariationModel(tech45, sigma_log=0.3)
        assert model.percentile_multiplier(50) == pytest.approx(1.0, abs=1e-6)
        assert model.percentile_multiplier(84.13) == pytest.approx(
            math.exp(0.3), rel=1e-2)


class TestDieCircuits:
    def test_leaky_die_has_shorter_bet(self, tech45):
        model = LeakageVariationModel(tech45, sigma_log=0.5, seed=7)
        dies = model.sample_population(40)
        leaky = max(dies, key=lambda d: d.leakage_multiplier)
        strong = min(dies, key=lambda d: d.leakage_multiplier)
        assert leaky.network.breakeven_time_s() < strong.network.breakeven_time_s()

    def test_die_leakage_scales_with_multiplier(self, tech45):
        model = LeakageVariationModel(tech45, sigma_log=0.5, seed=7)
        die = model.sample_die(0)
        nominal = tech45.core_leakage_power_w  # nominal temp = char temp
        assert die.network.domain_leakage_power_w == pytest.approx(
            nominal * die.leakage_multiplier)

    def test_die_net_saving_ordering(self, tech45):
        """For the same sleep, the leakier die always nets more saving."""
        model = LeakageVariationModel(tech45, sigma_log=0.5, seed=7)
        dies = sorted(model.sample_population(10),
                      key=lambda d: d.leakage_multiplier)
        sleep_s = 100e-9
        savings = [die.network.net_saving_j(sleep_s) for die in dies]
        assert savings == sorted(savings)
