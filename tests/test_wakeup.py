"""Tests for the wakeup timing algebra — MAPG's defining mechanism."""

import pytest

from repro.core.wakeup import WakeupPlan, plan_wakeup, resolve_wakeup
from repro.errors import SimulationError

DRAIN = 14
WAKE = 17


class TestPlanWakeup:
    def test_early_wakeup_backs_off_from_prediction(self):
        assert plan_wakeup(200, DRAIN, WAKE, early_wakeup=True) == 200 - WAKE

    def test_never_before_drain_end(self):
        assert plan_wakeup(20, DRAIN, WAKE, early_wakeup=True) == DRAIN

    def test_disabled_returns_none(self):
        assert plan_wakeup(200, DRAIN, WAKE, early_wakeup=False) is None

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            plan_wakeup(-1, DRAIN, WAKE, early_wakeup=True)


class TestResolvePerfectPrediction:
    def test_exact_prediction_zero_penalty(self):
        stall = 200
        plan = resolve_wakeup(stall, DRAIN, WAKE, planned_wake_offset=stall - WAKE)
        assert plan.penalty == 0
        assert plan.idle_awake == 0
        assert plan.sleep == stall - WAKE - DRAIN
        assert plan.total == stall

    def test_tiling_invariant(self):
        stall = 200
        plan = resolve_wakeup(stall, DRAIN, WAKE, planned_wake_offset=stall - WAKE)
        assert plan.drain + plan.sleep + plan.wake + plan.idle_awake == \
            stall + plan.penalty


class TestResolveNaive:
    def test_return_triggered_wake_pays_full_latency(self):
        stall = 200
        plan = resolve_wakeup(stall, DRAIN, WAKE, planned_wake_offset=None)
        assert plan.penalty == WAKE
        assert plan.sleep == stall - DRAIN
        assert plan.total == stall + WAKE


class TestResolveMisprediction:
    def test_underestimate_wakes_early_and_idles(self):
        stall = 200
        predicted = 150  # woke 50 cycles too early
        plan = resolve_wakeup(stall, DRAIN, WAKE,
                              planned_wake_offset=predicted - WAKE)
        assert plan.penalty == 0
        assert plan.idle_awake == stall - predicted
        assert plan.sleep == predicted - WAKE - DRAIN

    def test_overestimate_falls_back_to_return_trigger(self):
        stall = 200
        predicted = 400  # planned wake would start after the data returned
        plan = resolve_wakeup(stall, DRAIN, WAKE,
                              planned_wake_offset=predicted - WAKE)
        # Fallback bounds the loss at exactly the naive penalty.
        assert plan.penalty == WAKE
        assert plan.sleep == stall - DRAIN

    def test_slight_overestimate_partial_penalty(self):
        stall = 200
        predicted = 205  # wake starts at 188, ready at 205: 5 late
        plan = resolve_wakeup(stall, DRAIN, WAKE,
                              planned_wake_offset=predicted - WAKE)
        assert plan.penalty == 5
        assert plan.idle_awake == 0


class TestResolveAbort:
    def test_data_during_drain_aborts(self):
        plan = resolve_wakeup(10, DRAIN, WAKE, planned_wake_offset=None)
        assert plan.sleep == 0
        assert plan.wake == 0
        assert plan.penalty == 0
        assert plan.drain == 10

    def test_stall_equal_to_drain_aborts(self):
        plan = resolve_wakeup(DRAIN, DRAIN, WAKE, planned_wake_offset=None)
        assert plan.wake == 0
        assert plan.drain == DRAIN


class TestResolveTokenDelay:
    def test_token_delay_extends_sleep(self):
        stall = 200
        without = resolve_wakeup(stall, DRAIN, WAKE, planned_wake_offset=None)
        with_delay = resolve_wakeup(stall, DRAIN, WAKE,
                                    planned_wake_offset=None, token_delay=30)
        assert with_delay.sleep == without.sleep + 30
        assert with_delay.token_wait == 30

    def test_token_delay_adds_penalty_on_late_wake(self):
        stall = 200
        plan = resolve_wakeup(stall, DRAIN, WAKE,
                              planned_wake_offset=None, token_delay=30)
        assert plan.penalty == WAKE + 30

    def test_token_delay_on_early_wake_can_be_free(self):
        stall = 200
        # Planned wake 60 cycles early; a 30-cycle token delay still lands
        # the wake completion before the data return.
        plan = resolve_wakeup(stall, DRAIN, WAKE,
                              planned_wake_offset=stall - WAKE - 60,
                              token_delay=30)
        assert plan.penalty == 0
        assert plan.idle_awake == 30


class TestValidation:
    def test_negative_inputs_rejected(self):
        with pytest.raises(SimulationError):
            resolve_wakeup(-1, DRAIN, WAKE, None)
        with pytest.raises(SimulationError):
            resolve_wakeup(100, DRAIN, WAKE, None, token_delay=-1)

    def test_offset_before_drain_rejected(self):
        with pytest.raises(SimulationError):
            resolve_wakeup(100, DRAIN, WAKE, planned_wake_offset=DRAIN - 1)

    def test_plan_rejects_negative_fields(self):
        with pytest.raises(SimulationError):
            WakeupPlan(drain=-1, sleep=0, wake=0, idle_awake=0, penalty=0)

    def test_plan_rejects_token_wait_exceeding_sleep(self):
        with pytest.raises(SimulationError):
            WakeupPlan(drain=0, sleep=5, wake=0, idle_awake=0, penalty=0,
                       token_wait=6)
