"""Tests for the windowed-MLP core model."""

import dataclasses

import pytest

from repro.config import CacheConfig, CoreConfig, DramConfig, SystemConfig
from repro.cpu.core import Core, StallSegment
from repro.cpu.window import WindowedCore, make_core
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import run_workload, with_policy
from repro.trace.format import ComputeBlock, MemoryAccess


def make_windowed(window=2):
    config = CoreConfig(miss_window=window)
    l1 = CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                     associativity=2, hit_latency_cycles=2, mshr_entries=8)
    l2 = CacheConfig(name="L2", size_bytes=4096, line_bytes=64,
                     associativity=4, hit_latency_cycles=10, mshr_entries=8)
    hierarchy = MemoryHierarchy(l1, l2, DramConfig(refresh_latency_ns=0.0),
                                config.frequency_hz)
    return WindowedCore(config, hierarchy)


class TestFactory:
    def test_window_one_builds_blocking_core(self):
        core = make_core(CoreConfig(miss_window=1), make_windowed().hierarchy)
        assert type(core) is Core

    def test_window_above_one_builds_windowed(self):
        core = make_core(CoreConfig(miss_window=4), make_windowed().hierarchy)
        assert isinstance(core, WindowedCore)


class TestOverlap:
    def test_single_miss_does_not_stall(self):
        """With a free window slot the core runs past the miss."""
        core = make_windowed(window=2)
        ops = [MemoryAccess(0x10000), ComputeBlock(50)]
        segments = list(core.segments(ops))
        assert all(not isinstance(s, StallSegment) for s in segments)
        assert core.counters.get("overlapped_misses") == 1

    def test_window_full_stalls_on_oldest(self):
        core = make_windowed(window=1)
        # Two independent misses back-to-back: second finds window full.
        ops = [MemoryAccess(0x10000), MemoryAccess(0x90000)]
        stalls = [s for s in core.segments(ops)
                  if isinstance(s, StallSegment) and s.off_chip]
        assert len(stalls) == 1
        assert stalls[0].cycles > 50  # a near-full residual

    def test_compute_between_misses_shortens_residual(self):
        busy_gap = 100
        near = make_windowed(window=1)
        far = make_windowed(window=1)
        ops_near = [MemoryAccess(0x10000), MemoryAccess(0x90000)]
        ops_far = [MemoryAccess(0x10000), ComputeBlock(busy_gap),
                   MemoryAccess(0x90000)]
        stall_near = [s for s in near.segments(ops_near)
                      if isinstance(s, StallSegment) and s.off_chip][0]
        stall_far = [s for s in far.segments(ops_far)
                     if isinstance(s, StallSegment) and s.off_chip][0]
        assert stall_far.cycles < stall_near.cycles

    def test_fully_hidden_miss_never_stalls(self):
        core = make_windowed(window=2)
        ops = [MemoryAccess(0x10000), ComputeBlock(1000),
               MemoryAccess(0x90000)]
        segments = list(core.segments(ops))
        offchip = [s for s in segments
                   if isinstance(s, StallSegment) and s.off_chip]
        assert offchip == []
        assert core.counters.get("hidden_misses") >= 1

    def test_dependent_use_is_offchip_stall(self):
        """A same-line access shortly after the miss stalls gateably."""
        core = make_windowed(window=4)
        ops = [MemoryAccess(0x10000), ComputeBlock(5), MemoryAccess(0x10020)]
        stalls = [s for s in core.segments(ops)
                  if isinstance(s, StallSegment) and s.off_chip]
        assert len(stalls) == 1
        assert stalls[0].dram_kind == "merged"
        assert stalls[0].cycles > 50


class TestPointerChaseDependence:
    def test_dependent_access_stalls_on_producer(self):
        core = make_windowed(window=8)
        ops = [MemoryAccess(0x10000),
               MemoryAccess(0x90000, dependent=True)]
        stalls = [s for s in core.segments(ops)
                  if isinstance(s, StallSegment) and s.off_chip]
        # The chase serializes despite 8 free window slots.
        assert len(stalls) == 1
        assert core.counters.get("dependence_stalls") == 1
        assert stalls[0].elapsed_cycles >= 0

    def test_independent_access_overlaps(self):
        core = make_windowed(window=8)
        ops = [MemoryAccess(0x10000),
               MemoryAccess(0x90000, dependent=False)]
        stalls = [s for s in core.segments(ops)
                  if isinstance(s, StallSegment) and s.off_chip]
        assert stalls == []

    def test_dependent_on_completed_producer_is_free(self):
        core = make_windowed(window=8)
        ops = [MemoryAccess(0x10000), ComputeBlock(1000),
               MemoryAccess(0x90000, dependent=True)]
        stalls = [s for s in core.segments(ops)
                  if isinstance(s, StallSegment) and s.off_chip]
        assert stalls == []  # producer long since returned

    def test_generator_marks_chases_only_on_pointer_profiles(self):
        from repro.workloads import generate_trace
        mcf = generate_trace("mcf_like", 3000, seed=5)
        quantum = generate_trace("libquantum_like", 3000, seed=5)
        mcf_deps = sum(1 for op in mcf
                       if isinstance(op, MemoryAccess) and op.dependent)
        quantum_deps = sum(1 for op in quantum
                           if isinstance(op, MemoryAccess) and op.dependent)
        assert mcf_deps > 50
        assert quantum_deps == 0

    def test_dependence_flag_roundtrips_through_files(self, tmp_path):
        from repro.trace.io import read_trace_file, write_trace_file
        ops = [MemoryAccess(0x40, pc=4, dependent=True),
               MemoryAccess(0x80, pc=8, is_write=True, dependent=False)]
        for suffix in (".jsonl", ".bin"):
            path = tmp_path / f"t{suffix}"
            write_trace_file(ops, path)
            assert read_trace_file(path) == ops


class TestEndToEnd:
    def test_wider_window_is_faster(self):
        base = SystemConfig()
        cycles = []
        for window in (1, 2, 8):
            config = base.replace(
                core=dataclasses.replace(base.core, miss_window=window))
            result = run_workload(with_policy(config, "never"),
                                  "mcf_like", 2000, seed=7)
            cycles.append(result.total_cycles)
        assert cycles[0] > cycles[1] > cycles[2]

    def test_mlp_erodes_mapg_savings(self):
        base = SystemConfig()
        savings = []
        for window in (1, 4):
            config = base.replace(
                core=dataclasses.replace(base.core, miss_window=window))
            never = run_workload(with_policy(config, "never"),
                                 "mcf_like", 2000, seed=7)
            mapg = run_workload(with_policy(config, "mapg"),
                                "mcf_like", 2000, seed=7)
            savings.append(mapg.compare(never).energy_saving)
        assert savings[1] < savings[0]

    def test_ledger_still_tiles_exactly(self):
        base = SystemConfig()
        config = base.replace(
            core=dataclasses.replace(base.core, miss_window=4))
        result = run_workload(with_policy(config, "mapg"),
                              "milc_like", 2000, seed=7)
        assert sum(result.state_cycles.values()) == result.total_cycles
