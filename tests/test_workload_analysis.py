"""Tests for stack-distance profiling and simulator warm-up."""

import pytest

from repro.config import SystemConfig
from repro.errors import TraceError
from repro.sim.runner import run_workload, with_policy
from repro.sim.simulator import Simulator
from repro.trace.format import ComputeBlock, MemoryAccess
from repro.workloads import generate_trace
from repro.workloads.analysis import (
    INFINITE_DISTANCE,
    reuse_distances,
    stack_distance_histogram,
)


def line(n):
    return MemoryAccess(n * 64)


class TestReuseDistances:
    def test_cold_accesses_marked_infinite(self):
        assert reuse_distances([line(1), line(2)]) == [
            INFINITE_DISTANCE, INFINITE_DISTANCE]

    def test_immediate_retouch_distance_zero(self):
        assert reuse_distances([line(1), line(1)])[1] == 0

    def test_classic_sequence(self):
        # a b c a : a's re-touch sees {b, c} in between -> distance 2.
        distances = reuse_distances([line(1), line(2), line(3), line(1)])
        assert distances[3] == 2

    def test_same_line_different_offset(self):
        ops = [MemoryAccess(0x1000), MemoryAccess(0x103F)]
        assert reuse_distances(ops)[1] == 0

    def test_compute_blocks_ignored(self):
        ops = [line(1), ComputeBlock(100), line(1)]
        assert reuse_distances(ops) == [INFINITE_DISTANCE, 0]

    def test_max_depth_caps_search(self):
        ops = [line(n) for n in range(100)] + [line(0)]
        distances = reuse_distances(ops, max_depth=10)
        assert distances[-1] == 10

    def test_stack_stays_correct_past_cap(self):
        """Capped searches must not corrupt later exact distances."""
        ops = [line(n) for n in range(50)] + [line(0), line(0)]
        distances = reuse_distances(ops, max_depth=10)
        assert distances[-1] == 0  # immediate re-touch after the capped one

    def test_rejects_foreign_records(self):
        with pytest.raises(TraceError):
            reuse_distances([object()])


class TestStackProfile:
    def test_synthetic_workloads_have_continuous_curves(self):
        profile = stack_distance_histogram(generate_trace("gcc_like", 6000, seed=3))
        # Some immediate reuse, some mid-distance, some cold.
        assert profile.immediate > 0
        assert profile.cold > 0
        assert profile.histogram.count > 0

    def test_hit_fraction_monotone_in_capacity(self):
        profile = stack_distance_histogram(generate_trace("gcc_like", 6000, seed=3))
        fractions = [profile.hit_fraction_at(c) for c in (16, 256, 4096, 65536)]
        assert fractions == sorted(fractions)
        assert fractions[-1] <= 1.0

    def test_compute_bound_profile_more_local(self):
        povray = stack_distance_histogram(
            generate_trace("povray_like", 6000, seed=3))
        mcf = stack_distance_histogram(generate_trace("mcf_like", 6000, seed=3))
        assert povray.hit_fraction_at(512) > mcf.hit_fraction_at(512)

    def test_capacity_validation(self):
        profile = stack_distance_histogram(generate_trace("gcc_like", 500, seed=3))
        with pytest.raises(TraceError):
            profile.hit_fraction_at(0)

    def test_empty_trace(self):
        profile = stack_distance_histogram([])
        assert profile.total == 0
        assert profile.cold_fraction() == 0.0
        assert profile.hit_fraction_at(100) == 0.0


class TestCrossValidation:
    """The stack profile must predict what the cache simulator measures."""

    @pytest.mark.parametrize("pair", [("povray_like", "mcf_like"),
                                      ("hmmer_like", "lbm_like")])
    def test_profile_ordering_matches_simulated_l1_hit_rates(self, pair):
        local, hostile = pair
        config = with_policy(SystemConfig(), "never")
        l1_lines = config.l1.size_bytes // config.l1.line_bytes

        def analytic(name):
            profile = stack_distance_histogram(generate_trace(name, 5000, seed=3))
            return profile.hit_fraction_at(l1_lines)

        def simulated(name):
            result = run_workload(config, name, 5000, seed=3)
            return (result.memory_counters.get("l1_hits", 0)
                    / max(1, result.memory_counters.get("l1_accesses", 1)))

        # Both views must order the two workloads the same way.
        assert (analytic(local) > analytic(hostile)) == \
            (simulated(local) > simulated(hostile))

    def test_analytic_hit_fraction_tracks_simulated_within_band(self):
        """Fully-associative LRU (analytic) vs 8-way set-assoc (simulated)
        agree within a coarse band on the default L1."""
        config = with_policy(SystemConfig(), "never")
        l1_lines = config.l1.size_bytes // config.l1.line_bytes
        trace = generate_trace("gcc_like", 5000, seed=3)
        analytic = stack_distance_histogram(trace).hit_fraction_at(l1_lines)
        result = run_workload(config, "gcc_like", 5000, seed=3)
        simulated = (result.memory_counters.get("l1_hits", 0)
                     / max(1, result.memory_counters.get("l1_accesses", 1)))
        assert abs(analytic - simulated) < 0.15


class TestWarmup:
    def test_warmup_excluded_from_metrics(self):
        config = with_policy(SystemConfig(), "mapg")
        cold = run_workload(config, "gcc_like", 2000, seed=9)
        warm = run_workload(config, "gcc_like", 2000, seed=9, warmup_ops=2000)
        # Measured instruction counts differ (different trace windows), but
        # the warm run must not include the warm-up window's cycles.
        assert warm.total_cycles < cold.total_cycles + warm.instructions * 5
        assert sum(warm.state_cycles.values()) == warm.total_cycles

    def test_warm_caches_cut_offchip_traffic(self):
        config = with_policy(SystemConfig(), "never")
        cold = run_workload(config, "gcc_like", 1500, seed=9)
        warm = run_workload(config, "gcc_like", 1500, seed=9,
                            warmup_ops=6000)

        def offchip_per_access(result):
            return (result.memory_counters.get("dram_accesses", 0)
                    / max(1, result.memory_counters.get("l1_accesses", 1)))

        # The warm window re-touches lines the warm-up installed; the cold
        # window pays first-touch misses for all of them.
        assert offchip_per_access(warm) < offchip_per_access(cold)

    def test_warmup_after_run_rejected(self):
        from repro.errors import SimulationError
        simulator = Simulator(with_policy(SystemConfig(), "never"))
        simulator.run([ComputeBlock(10)])
        with pytest.raises(SimulationError):
            simulator.warm_up([ComputeBlock(10)])

    def test_reset_measurements_zeroes_counters(self):
        simulator = Simulator(with_policy(SystemConfig(), "mapg"))
        for segment in simulator.core.segments(
                generate_trace("gcc_like", 500, seed=9)):
            simulator.handle_segment(segment)
        simulator.reset_measurements()
        assert simulator.ledger.total_cycles == 0
        assert simulator.controller.counters.get("offchip_stalls") == 0
        assert simulator.hierarchy.l1.counters.get("accesses") == 0
        result = simulator.result()
        assert result.total_cycles == 0
        assert result.instructions == 0
