"""Tests for phases, profiles, and the synthetic trace generator."""

import pytest

from repro.errors import ConfigError
from repro.trace.format import ComputeBlock, MemoryAccess, trace_summary
from repro.workloads import (
    PhaseSchedule,
    PhaseSpec,
    SyntheticTraceGenerator,
    generate_trace,
    get_profile,
    memory_bound_profiles,
    profile_names,
)
from repro.workloads.profiles import PROFILES, WorkloadProfile


class TestPhases:
    def test_steady_schedule_single_phase(self):
        schedule = PhaseSchedule.steady()
        assert schedule.phase_at(0) is schedule.phase_at(10**6)

    def test_phase_lookup_within_period(self):
        phases = (PhaseSpec(ops=10, memory_scale=2.0),
                  PhaseSpec(ops=20, memory_scale=0.5))
        schedule = PhaseSchedule(phases)
        assert schedule.phase_at(5).memory_scale == 2.0
        assert schedule.phase_at(15).memory_scale == 0.5
        assert schedule.period == 30

    def test_schedule_repeats(self):
        phases = (PhaseSpec(ops=10, memory_scale=2.0),
                  PhaseSpec(ops=20, memory_scale=0.5))
        schedule = PhaseSchedule(phases)
        assert schedule.phase_at(35).memory_scale == 2.0

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigError):
            PhaseSchedule(())

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            PhaseSchedule.steady().phase_at(-1)

    def test_phase_spec_validation(self):
        with pytest.raises(ConfigError):
            PhaseSpec(ops=0)
        with pytest.raises(ConfigError):
            PhaseSpec(ops=10, memory_scale=0.0)
        with pytest.raises(ConfigError):
            PhaseSpec(ops=10, random_scale=-1.0)


class TestProfiles:
    def test_fourteen_profiles_defined(self):
        assert len(PROFILES) == 14

    def test_names_ordered_most_memory_bound_first(self):
        names = profile_names()
        assert names[0] == "mcf_like"
        assert names[-1] == "povray_like"

    def test_memory_bound_subset(self):
        subset = memory_bound_profiles()
        assert "mcf_like" in subset
        assert "povray_like" not in subset

    def test_lookup_unknown_profile(self):
        with pytest.raises(ConfigError, match="mcf_like"):
            get_profile("spice_like")

    def test_pattern_fractions_sum_to_one(self):
        for profile in PROFILES.values():
            total = (profile.sequential_fraction + profile.strided_fraction
                     + profile.random_fraction)
            assert total == pytest.approx(1.0)

    def test_reuse_ordering_matches_memory_boundedness(self):
        assert (PROFILES["mcf_like"].reuse_fraction
                < PROFILES["gcc_like"].reuse_fraction
                < PROFILES["povray_like"].reuse_fraction)

    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", description="d",
                            instructions_per_memory_op=0.5,
                            sequential_fraction=1.0, strided_fraction=0.0,
                            random_fraction=0.0, working_set_bytes=1 << 20)
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", description="d",
                            instructions_per_memory_op=5.0,
                            sequential_fraction=0.5, strided_fraction=0.0,
                            random_fraction=0.0, working_set_bytes=1 << 20)
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", description="d",
                            instructions_per_memory_op=5.0,
                            sequential_fraction=1.0, strided_fraction=0.0,
                            random_fraction=0.0, working_set_bytes=1024)


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        a = generate_trace("gcc_like", 500, seed=3)
        b = generate_trace("gcc_like", 500, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_trace("gcc_like", 500, seed=3)
        b = generate_trace("gcc_like", 500, seed=4)
        assert a != b

    def test_produces_requested_op_count(self):
        assert len(generate_trace("mcf_like", 777)) == 777

    def test_zero_ops(self):
        assert generate_trace("mcf_like", 0) == []

    def test_negative_ops_rejected(self):
        with pytest.raises(ConfigError):
            generate_trace("mcf_like", -1)

    def test_memory_intensity_matches_profile(self):
        """Mean instructions per memory op lands near the profile's target."""
        profile = get_profile("gcc_like")
        ops = generate_trace("gcc_like", 20_000, seed=1)
        summary = trace_summary(ops)
        per_mem = summary["instructions"] / summary["memory_accesses"]
        # Phases modulate the rate, so allow a generous band.
        assert 0.5 * profile.instructions_per_memory_op < per_mem \
            < 2.0 * profile.instructions_per_memory_op

    def test_memory_bound_profile_has_more_accesses(self):
        mcf = trace_summary(generate_trace("mcf_like", 10_000, seed=1))
        povray = trace_summary(generate_trace("povray_like", 10_000, seed=1))
        mcf_rate = mcf["memory_accesses"] / mcf["instructions"]
        povray_rate = povray["memory_accesses"] / povray["instructions"]
        assert mcf_rate > 1.5 * povray_rate

    def test_write_fraction_respected(self):
        profile = get_profile("libquantum_like")
        summary = trace_summary(generate_trace("libquantum_like", 20_000, seed=1))
        measured = summary["writes"] / summary["memory_accesses"]
        assert measured == pytest.approx(profile.write_fraction, abs=0.05)

    def test_addresses_stay_within_stream_regions(self):
        for op in generate_trace("mcf_like", 2000, seed=1):
            if isinstance(op, MemoryAccess):
                region = op.address >> 36
                assert region in (0, 1, 2)

    def test_pcs_come_from_pool(self):
        profile = get_profile("gcc_like")
        valid = {0x40_0000 + 4 * i for i in range(profile.pc_pool_size)}
        for op in generate_trace("gcc_like", 2000, seed=1):
            if isinstance(op, MemoryAccess):
                assert op.pc in valid

    def test_reuse_produces_repeated_lines(self):
        """High-reuse profiles revisit recent lines often."""
        seen = set()
        repeats = 0
        total = 0
        for op in generate_trace("povray_like", 5000, seed=1):
            if not isinstance(op, MemoryAccess):
                continue
            line = op.address >> 6
            total += 1
            if line in seen:
                repeats += 1
            seen.add(line)
        assert repeats / total > 0.5

    def test_generator_resumable_stream(self):
        generator = SyntheticTraceGenerator(get_profile("gcc_like"), seed=9)
        first = list(generator.operations(100))
        second = list(generator.operations(100))
        assert len(first) == len(second) == 100
        # The stream continues; it must not restart identically.
        assert first != second
